"""Shared-memory payload codec for the raylite process backend.

Messages between the driver and process actors travel over a
``multiprocessing`` pipe.  Pickling NumPy payloads (weight dicts,
trajectory batches) through that pipe costs two serialization passes and
two chunked copies per transfer.  This codec strips large ndarrays out
of a payload, packs them into **one** ``multiprocessing.shared_memory``
block, and sends only a lightweight placeholder tree over the pipe:

* :func:`encode` — walk the payload (dicts/lists/tuples/ndarrays, any
  depth); every C-contiguous-able array of at least
  :data:`SHM_THRESHOLD` bytes is copied once into a freshly created
  shared block at a 64-byte-aligned offset and replaced by a
  :class:`ShmArray` token.  Everything else rides along pickled as-is.
* :func:`decode` — attach the block and rebuild the arrays as
  **zero-copy views** over the shared buffer.  A :class:`_Lease`
  refcounts the decoded arrays via ``weakref.finalize``: when the last
  array dies, the block is closed and unlinked.  Consumers therefore
  treat decoded arrays like any other ndarray — lifetime is automatic.

Ownership protocol: the sender unregisters the block from its own
``resource_tracker`` (ownership transfers with the message) and closes
its mapping after the copy; the receiver's lease performs the unlink.
If shared memory is unavailable (``/dev/shm`` missing or exhausted) the
codec degrades to inline pickling — correctness never depends on it.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, List, Optional, Tuple

import numpy as np

try:
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - ancient/exotic platforms
    shared_memory = None
    resource_tracker = None

#: Arrays at or above this many bytes go through shared memory; smaller
#: ones are cheaper to pickle inline than to align and map.
SHM_THRESHOLD = 2048

_ALIGN = 64


class ShmArray:
    """Pipe-picklable placeholder for one array stored in the block."""

    __slots__ = ("offset", "shape", "dtype")

    def __init__(self, offset: int, shape: Tuple[int, ...], dtype: str):
        self.offset = offset
        self.shape = shape
        self.dtype = dtype

    def __getstate__(self):
        return (self.offset, self.shape, self.dtype)

    def __setstate__(self, state):
        self.offset, self.shape, self.dtype = state


class _Lease:
    """Closes + unlinks one attached block once every decoded array dies."""

    def __init__(self, shm, count: int):
        self._shm = shm
        self._remaining = count
        self._lock = threading.Lock()

    def release(self):
        with self._lock:
            self._remaining -= 1
            if self._remaining > 0:
                return
        try:
            self._shm.close()
        except BufferError:  # stray export; leave for process teardown
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:
            # Raced with a sender-side discard(): the block is gone but
            # unlink() bailed before unregistering — balance the
            # tracker entry ourselves or it warns at exit.
            disown(self._shm)


def _shm_eligible(value: Any) -> bool:
    return (isinstance(value, np.ndarray) and not value.dtype.hasobject
            and value.nbytes >= SHM_THRESHOLD)


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


def _strip(node: Any, arrays: List[np.ndarray], offsets: List[int],
           cursor: List[int]) -> Any:
    """Replace large arrays with ShmArray tokens; rebuild containers."""
    if _shm_eligible(node):
        arr = np.ascontiguousarray(node)
        offset = cursor[0]
        cursor[0] += _aligned(arr.nbytes)
        arrays.append(arr)
        offsets.append(offset)
        return ShmArray(offset, arr.shape, arr.dtype.str)
    if isinstance(node, dict):
        return {k: _strip(v, arrays, offsets, cursor) for k, v in node.items()}
    if isinstance(node, list):
        return [_strip(v, arrays, offsets, cursor) for v in node]
    if isinstance(node, tuple):
        return tuple(_strip(v, arrays, offsets, cursor) for v in node)
    return node


def _graft(node: Any, buf, views: List[np.ndarray]) -> Any:
    """Inverse of :func:`_strip`: tokens become views over ``buf``."""
    if isinstance(node, ShmArray):
        view = np.ndarray(node.shape, dtype=np.dtype(node.dtype),
                          buffer=buf, offset=node.offset)
        views.append(view)
        return view
    if isinstance(node, dict):
        return {k: _graft(v, buf, views) for k, v in node.items()}
    if isinstance(node, list):
        return [_graft(v, buf, views) for v in node]
    if isinstance(node, tuple):
        return tuple(_graft(v, buf, views) for v in node)
    return node


class BlockPool:
    """Size-keyed free-list of *persistent* named shared-memory blocks.

    The message codec above transfers block ownership with each message
    (receiver unlinks), so its blocks cannot be reused across sends.
    Long-lived, repeatedly rewritten buffers — learner-group gradient
    rings, flat-weight broadcast slots — have the opposite lifecycle:
    same size every round, same readers every round.  The pool serves
    those: :meth:`acquire` hands out a block of at least ``nbytes``
    (aligned), preferring a previously released block of the same size
    key over creating a new one; :meth:`release` returns it to the
    free-list without unlinking.  ``stats()`` exposes hit/miss counters
    so tests can assert steady-state rounds allocate nothing.

    Blocks stay owned by the creating process: peers attach by name and
    must close their mappings but never unlink (:meth:`drain` — called
    automatically at interpreter exit — unlinks everything the pool
    ever created).
    """

    def __init__(self):
        self._free: dict = {}
        self._created: list = []
        self._lock = threading.Lock()
        self._stats = {"hits": 0, "misses": 0, "active": 0, "released": 0}

    def acquire(self, nbytes: int):
        """A block of at least ``nbytes`` (or None when shm is
        unavailable — callers fall back to pipe transport)."""
        if shared_memory is None:
            return None
        key = _aligned(max(int(nbytes), 1))
        with self._lock:
            bucket = self._free.get(key)
            if bucket:
                shm = bucket.pop()
                self._stats["hits"] += 1
                self._stats["active"] += 1
                return shm
        try:
            shm = shared_memory.SharedMemory(create=True, size=key)
        except (OSError, ValueError):
            return None
        with self._lock:
            self._stats["misses"] += 1
            self._stats["active"] += 1
            self._created.append(shm)
        return shm

    def release(self, shm) -> None:
        """Return a block to its size bucket (no unlink, no close)."""
        if shm is None:
            return
        key = _aligned(shm.size)
        with self._lock:
            self._free.setdefault(key, []).append(shm)
            self._stats["released"] += 1
            self._stats["active"] -= 1

    def stats(self) -> dict:
        with self._lock:
            out = dict(self._stats)
        out["free_blocks"] = sum(len(b) for b in self._free.values())
        return out

    def drain(self) -> None:
        """Unlink every block this pool ever created (process exit)."""
        with self._lock:
            created, self._created = self._created, []
            self._free.clear()
            self._stats["active"] = 0
        for shm in created:
            try:
                shm.close()
            except BufferError:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass


_pool: Optional[BlockPool] = None


def get_pool() -> BlockPool:
    """The process-wide block pool (created on first use)."""
    global _pool
    if _pool is None:
        _pool = BlockPool()
        import atexit
        atexit.register(_pool.drain)
    return _pool


def disown(shm) -> None:
    """Transfer block ownership out of the resource tracker.

    Called on the **creating** side only: ownership moves with the
    message, and the receiver's attach re-registers the name (the
    eventual ``unlink()`` unregisters it again, keeping the tracker
    balanced — attaching sides must therefore *not* call this).
    """
    if resource_tracker is not None:
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass


def encode(payload: Any) -> Tuple[Any, Optional[str]]:
    """Pack ``payload`` for the pipe.

    Returns ``(tree, block_name)``.  ``tree`` is pipe-picklable (large
    arrays replaced by tokens); ``block_name`` names the shared block,
    or is None when nothing crossed the threshold (or shm is
    unavailable), in which case ``tree`` is the payload unchanged.
    """
    if shared_memory is None:
        return payload, None
    arrays: List[np.ndarray] = []
    offsets: List[int] = []
    cursor = [0]
    tree = _strip(payload, arrays, offsets, cursor)
    if not arrays:
        return payload, None
    try:
        shm = shared_memory.SharedMemory(create=True, size=cursor[0])
    except (OSError, ValueError):  # no /dev/shm or exhausted: pickle inline
        return payload, None
    for arr, offset in zip(arrays, offsets):
        dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf,
                         offset=offset)
        np.copyto(dst, arr)
        del dst
    name = shm.name
    disown(shm)
    shm.close()
    return tree, name


def decode(tree: Any, block_name: Optional[str]) -> Any:
    """Rebuild a payload; arrays become zero-copy views into the block.

    The block is closed + unlinked automatically once every decoded
    array has been garbage collected (see :class:`_Lease`).
    """
    if block_name is None:
        return tree
    shm = shared_memory.SharedMemory(name=block_name)
    views: List[np.ndarray] = []
    payload = _graft(tree, shm.buf, views)
    if not views:  # token-free tree with a block should not happen
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        return payload
    lease = _Lease(shm, len(views))
    for view in views:
        weakref.finalize(view, lease.release)
    return payload


def discard(tree: Any, block_name: Optional[str]) -> None:
    """Drop an encoded-but-undeliverable message's block (sender side)."""
    if block_name is None or shared_memory is None:
        return
    try:
        shm = shared_memory.SharedMemory(name=block_name)
    except FileNotFoundError:
        return
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
