"""raylite process backend: actors in ``multiprocessing`` workers.

Each actor owns one OS process running :func:`_worker_main` — a mailbox
loop over a duplex pipe.  The driver side (:class:`ProcessActorHandle`)
mirrors the thread backend's surface exactly (``handle.method.remote()``
returning :class:`~repro.raylite.core.ObjectRef`), so executors select a
backend without touching their coordination loops:

* task submission pickles only the lightweight message skeleton; NumPy
  payloads (weight dicts, sample batches, rollouts) travel through
  ``multiprocessing.shared_memory`` blocks via :mod:`repro.raylite.shm`
  — one copy into the block on the sender, zero-copy views out of it on
  the receiver;
* a per-handle reader thread resolves ObjectRefs as results arrive, so
  ``get``/``wait`` block on events, never on polls;
* worker death (crash, kill, unpicklable traffic) fails every pending
  ref with a descriptive :class:`RayliteError` instead of hanging.

Workers are deliberately **non-daemonic** so actors may themselves host
subprocess vector envs (daemonic processes cannot have children);
``raylite.shutdown`` is registered via ``atexit`` as the reaper of last
resort.  Spawn-safety: the worker entry point is a module-level
function and all construction arguments ship through ``Process(args=)``
(inherited for free under fork, pickled once under spawn).
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import traceback
from typing import Any, Dict, Optional

from repro.raylite import shm as shm_codec
from repro.utils.procutil import default_start_method

# A worker that has not answered the ready handshake in this long is
# wedged (e.g. the rare fork-while-threaded-parent deadlock): fail the
# construction fast with a clear error instead of stalling the caller.
_READY_TIMEOUT = 20.0
_JOIN_TIMEOUT = 5.0


def _send_error(conn, tag: str, task_id, exc: BaseException) -> None:
    tb = traceback.format_exc()
    try:
        conn.send((tag, task_id, exc, tb))
    except Exception:  # exception itself does not pickle: ship a summary
        from repro.utils.errors import RLGraphError
        summary = RLGraphError(f"{type(exc).__name__}: {exc}")
        conn.send((tag, task_id, summary, tb))


def _worker_main(conn, cls, args, kwargs) -> None:
    """Actor-process entry point: construct, then serve the mailbox."""
    try:
        instance = cls(*args, **kwargs)
    except BaseException as exc:
        _send_error(conn, "init_error", None, exc)
        conn.close()
        return
    conn.send(("ready", None, None, None))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # driver vanished
            break
        kind = message[0]
        if kind == "stop":
            break
        _, task_id, tree, block = message
        try:
            method_name, call_args, call_kwargs = shm_codec.decode(tree, block)
            result = getattr(instance, method_name)(*call_args, **call_kwargs)
        except BaseException as exc:
            _send_error(conn, "err", task_id, exc)
            continue
        out_tree, out_block = shm_codec.encode(result)
        try:
            conn.send(("ok", task_id, out_tree, out_block))
        except BaseException as exc:  # unpicklable result / driver gone
            shm_codec.discard(out_tree, out_block)
            try:
                _send_error(conn, "err", task_id, exc)
            except Exception:
                break  # pipe is dead; exit so the block is not re-leaked
    conn.close()


class ProcessActorHandle:
    """Driver-side handle to an actor living in a worker process."""

    _counter = itertools.count()

    def __init__(self, cls: type, args, kwargs, name: str = "",
                 start_method: Optional[str] = None):
        # Imported late: core imports this module.
        from repro.raylite.core import ObjectRef, RayliteError, register_actor

        self._ObjectRef = ObjectRef
        self._RayliteError = RayliteError
        self._cls = cls
        self._name = name or f"{cls.__name__}-p{next(self._counter)}"
        method = start_method or default_start_method()
        ctx = multiprocessing.get_context(method)
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=_worker_main, args=(child_conn, cls, args, kwargs),
            name=f"raylite-{self._name}", daemon=False)
        self._proc.start()
        child_conn.close()
        self._task_ids = itertools.count()
        self._pending: Dict[int, Any] = {}
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._stopped = threading.Event()
        self._death_callbacks = []
        self._death_notified = False
        self._death_lock = threading.Lock()
        self._await_ready()
        self._reader = threading.Thread(
            target=self._read_loop, daemon=True,
            name=f"raylite-{self._name}-reader")
        self._reader.start()
        register_actor(self)

    # -- startup ------------------------------------------------------------
    def _await_ready(self) -> None:
        if not self._conn.poll(_READY_TIMEOUT):
            self._proc.terminate()
            raise self._RayliteError(
                f"Actor {self._name} did not come up within "
                f"{_READY_TIMEOUT:.0f}s")
        try:
            kind, _, exc, tb = self._conn.recv()
        except (EOFError, OSError):
            self._proc.join(_JOIN_TIMEOUT)
            raise self._RayliteError(
                f"Actor {self._name} process died during construction "
                f"(exit code {self._proc.exitcode})")
        if kind == "init_error":
            self._proc.join(_JOIN_TIMEOUT)
            if tb and hasattr(exc, "add_note"):
                exc.add_note(f"(remote actor traceback)\n{tb}")
            raise exc

    # -- liveness -----------------------------------------------------------
    @property
    def pid(self) -> Optional[int]:
        """OS pid of the actor's worker process (chaos tests SIGKILL it)."""
        return self._proc.pid

    def is_alive(self) -> bool:
        """Liveness probe: the worker process exists and the handle has
        not been stopped.  This is the mailbox-level signal supervisors
        poll — a SIGKILLed worker flips it immediately, before the
        reader thread has even seen the pipe EOF."""
        return not self._stopped.is_set() and self._proc.is_alive()

    def add_death_callback(self, callback) -> None:
        """Run ``callback(handle)`` once when the worker dies
        *unexpectedly* (crash / SIGKILL / pipe loss) — NOT on a
        deliberate :func:`~repro.raylite.core.kill` or ``shutdown``.
        Fires immediately if the death already happened."""
        with self._death_lock:
            if not self._death_notified:
                self._death_callbacks.append(callback)
                return
        callback(self)

    def _notify_death(self) -> None:
        with self._death_lock:
            if self._death_notified:
                return
            self._death_notified = True
            callbacks, self._death_callbacks = self._death_callbacks, []
        for callback in callbacks:
            try:
                callback(self)
            except Exception:  # pragma: no cover - defensive
                pass

    # -- result pump --------------------------------------------------------
    def _read_loop(self) -> None:
        while True:
            try:
                kind, task_id, tree, block = self._conn.recv()
            except (EOFError, OSError):
                deliberate = self._stopped.is_set()
                self._fail_pending(self._RayliteError(
                    f"Actor {self._name} process died "
                    f"(exit code {self._proc.exitcode}); pending tasks "
                    f"failed"))
                self._stopped.set()
                if not deliberate:
                    self._notify_death()
                return
            with self._lock:
                entry = self._pending.pop(task_id, None)
            if entry is None:
                shm_codec.discard(tree, block if kind == "ok" else None)
                continue
            ref = entry[0]
            if kind == "ok":
                try:
                    ref._resolve(shm_codec.decode(tree, block))
                except BaseException as exc:
                    ref._fail(exc)
            else:  # kind == "err": (exc, remote traceback) in tree/block
                if block and hasattr(tree, "add_note"):
                    tree.add_note(f"(remote actor traceback)\n{block}")
                ref._fail(tree)

    def _fail_pending(self, error: BaseException) -> None:
        with self._lock:
            pending, self._pending = self._pending, {}
        for ref, args_block in pending.values():
            # The worker never consumed this task's args: unlink its
            # shared block here or it outlives the interpreter (encode()
            # disowned it from the resource tracker).
            shm_codec.discard(None, args_block)
            ref._fail(error)

    # -- submission ---------------------------------------------------------
    def _submit(self, method_name: str, args, kwargs):
        if self._stopped.is_set():
            raise self._RayliteError(f"Actor {self._name} is stopped")
        if not hasattr(self._cls, method_name):
            raise self._RayliteError(
                f"Actor {self._cls.__name__} has no method {method_name!r}")
        ref = self._ObjectRef()
        task_id = next(self._task_ids)
        tree, block = shm_codec.encode((method_name, tuple(args), kwargs))
        # Keep the args-block name with the ref: a task cancelled before
        # the worker decodes it must discard the block (see
        # _fail_pending), since nothing else ever unlinks it.
        with self._lock:
            self._pending[task_id] = (ref, block)
        try:
            with self._send_lock:
                self._conn.send(("task", task_id, tree, block))
        except (BrokenPipeError, OSError):
            shm_codec.discard(tree, block)
            with self._lock:
                self._pending.pop(task_id, None)
            ref._fail(self._RayliteError(
                f"Actor {self._name} is gone; could not submit "
                f"{method_name!r}"))
        return ref

    def num_pending(self) -> int:
        """Tasks submitted but not yet completed (same load signal as the
        thread backend's :meth:`ActorHandle.num_pending`)."""
        with self._lock:
            return len(self._pending)

    # -- teardown -----------------------------------------------------------
    def _stop(self) -> None:
        """Reap the worker.  Idle actors exit gracefully; an actor with
        queued work gets a short grace for the in-flight task and is
        then terminated — pending refs fail with a clear RayliteError
        (stop-means-cancel, as in Ray), callers never hang."""
        if self._stopped.is_set():
            self._proc.join(_JOIN_TIMEOUT)
            return
        self._stopped.set()
        try:
            with self._send_lock:
                self._conn.send(("stop", None, None, None))
        except (BrokenPipeError, OSError):
            pass
        with self._lock:
            has_pending = bool(self._pending)
        # The stop sentinel sits behind queued tasks; do not drain them.
        self._proc.join(1.0 if has_pending else _JOIN_TIMEOUT)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(1.0)
        if self._proc.is_alive():  # pragma: no cover - last resort
            self._proc.kill()
            self._proc.join(1.0)
        self._fail_pending(self._RayliteError(
            f"raylite.shutdown: actor {self._name} stopped; "
            f"pending tasks cancelled"))
        try:
            self._conn.close()
        except OSError:
            pass

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        from repro.raylite.core import _RemoteMethod
        return _RemoteMethod(self, name)

    def __repr__(self):
        state = "stopped" if self._stopped.is_set() else "running"
        return f"<ProcessActorHandle {self._name} {state}>"
