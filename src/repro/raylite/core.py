"""raylite core: actors, futures, object store.

Semantics follow Ray where it matters for the executors:

* ``remote(Cls)`` returns a factory; ``factory.remote(*args)`` constructs
  the actor in its own thread and returns an :class:`ActorHandle`;
* ``handle.method.remote(*args)`` enqueues a task and returns an
  :class:`ObjectRef` immediately; tasks of one actor run in FIFO order;
* ``get(ref)`` blocks; ``wait(refs, num_returns)`` splits ready/pending;
* exceptions raised in actor methods surface at ``get`` time;
* an optional serialization round-trip (``init(serialize=True)``) models
  Ray's object-store copy costs for transfer-sensitive benchmarks.
"""

from __future__ import annotations

import itertools
import pickle
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.utils.errors import RLGraphError


class RayliteError(RLGraphError):
    """Raised for framework-level failures (not actor exceptions)."""


class _Config:
    serialize = False
    initialized = True


_config = _Config()
_actors: List["ActorHandle"] = []
_actors_lock = threading.Lock()


def init(serialize: bool = False) -> None:
    """Configure the runtime (optional; defaults are live)."""
    _config.serialize = serialize
    _config.initialized = True


def shutdown() -> None:
    """Stop all actor threads."""
    with _actors_lock:
        actors = list(_actors)
        _actors.clear()
    for actor in actors:
        actor._stop()


def _maybe_copy(value):
    if _config.serialize:
        return pickle.loads(pickle.dumps(value))
    return value


class ObjectRef:
    """A future for a task result (or a ``put`` value)."""

    _ids = itertools.count()

    def __init__(self):
        self.id = next(ObjectRef._ids)
        self._event = threading.Event()
        self._value = None
        self._error: Optional[BaseException] = None

    def _resolve(self, value):
        self._value = value
        self._event.set()

    def _fail(self, error: BaseException):
        self._error = error
        self._event.set()

    def ready(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        if not self._event.wait(timeout):
            raise RayliteError(f"get() timed out after {timeout}s")
        if self._error is not None:
            raise self._error
        return _maybe_copy(self._value)

    def __repr__(self):
        state = "ready" if self.ready() else "pending"
        return f"<ObjectRef #{self.id} {state}>"


def put(value) -> ObjectRef:
    """Store a value in the object store (returns a resolved ref)."""
    ref = ObjectRef()
    ref._resolve(_maybe_copy(value))
    return ref


def get(refs, timeout: Optional[float] = None):
    """Resolve a ref or a list of refs (blocking)."""
    if isinstance(refs, ObjectRef):
        return refs.result(timeout)
    return [r.result(timeout) for r in refs]


def wait(refs: Sequence[ObjectRef], num_returns: int = 1,
         timeout: Optional[float] = None) -> Tuple[List[ObjectRef], List[ObjectRef]]:
    """Block until ``num_returns`` refs are ready (or timeout).

    Returns (ready, pending) preserving input order within each list.
    """
    if num_returns > len(refs):
        raise RayliteError(
            f"num_returns {num_returns} > number of refs {len(refs)}")
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        ready = [r for r in refs if r.ready()]
        if len(ready) >= num_returns:
            ready_ids = {r.id for r in ready}
            return ready, [r for r in refs if r.id not in ready_ids]
        if deadline is not None and time.monotonic() >= deadline:
            ready_ids = {r.id for r in ready}
            return ready, [r for r in refs if r.id not in ready_ids]
        time.sleep(0.0005)


class _Task:
    __slots__ = ("method_name", "args", "kwargs", "ref")

    def __init__(self, method_name, args, kwargs, ref):
        self.method_name = method_name
        self.args = args
        self.kwargs = kwargs
        self.ref = ref


class _RemoteMethod:
    """Bound ``.remote()`` callable for one actor method."""

    def __init__(self, handle: "ActorHandle", name: str):
        self._handle = handle
        self._name = name

    def remote(self, *args, **kwargs) -> ObjectRef:
        return self._handle._submit(self._name, args, kwargs)

    def __call__(self, *args, **kwargs):
        raise RayliteError(
            f"Actor methods must be called with .remote(): {self._name}")


class ActorHandle:
    """A handle to an actor running in its own thread."""

    def __init__(self, cls: type, args, kwargs, name: str = ""):
        self._cls = cls
        self._name = name or f"{cls.__name__}-{id(self) & 0xFFFF:x}"
        self._mailbox: "queue.Queue[Optional[_Task]]" = queue.Queue()
        self._instance = None
        self._init_error: Optional[BaseException] = None
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._thread = threading.Thread(
            target=self._run, args=(args, kwargs), daemon=True,
            name=f"raylite-{self._name}")
        self._thread.start()
        self._started.wait()
        if self._init_error is not None:
            raise self._init_error
        with _actors_lock:
            _actors.append(self)

    # -- actor loop ---------------------------------------------------------
    def _run(self, args, kwargs):
        try:
            self._instance = self._cls(*args, **kwargs)
        except BaseException as exc:  # surfaced to the creator
            self._init_error = exc
            self._started.set()
            return
        self._started.set()
        while not self._stopped.is_set():
            try:
                task = self._mailbox.get(timeout=0.1)
            except queue.Empty:
                continue
            if task is None:
                break
            try:
                method = getattr(self._instance, task.method_name)
                task.ref._resolve(method(*task.args, **task.kwargs))
            except BaseException as exc:
                task.ref._fail(exc)

    def _submit(self, method_name: str, args, kwargs) -> ObjectRef:
        if self._stopped.is_set():
            raise RayliteError(f"Actor {self._name} is stopped")
        if not hasattr(self._cls, method_name):
            raise RayliteError(
                f"Actor {self._cls.__name__} has no method {method_name!r}")
        ref = ObjectRef()
        args = tuple(_maybe_copy(a) for a in args)
        kwargs = {k: _maybe_copy(v) for k, v in kwargs.items()}
        self._mailbox.put(_Task(method_name, args, kwargs, ref))
        return ref

    def _stop(self):
        self._stopped.set()
        self._mailbox.put(None)
        self._thread.join(timeout=5.0)

    def __getattr__(self, name: str) -> _RemoteMethod:
        if name.startswith("_"):
            raise AttributeError(name)
        return _RemoteMethod(self, name)

    def __repr__(self):
        return f"<ActorHandle {self._name}>"


class _ActorFactory:
    def __init__(self, cls: type):
        self._cls = cls

    def remote(self, *args, **kwargs) -> ActorHandle:
        return ActorHandle(self._cls, args, kwargs)

    def options(self, name: str = ""):
        factory = self

        class _Named:
            def remote(self, *args, **kwargs):
                return ActorHandle(factory._cls, args, kwargs, name=name)

        return _Named()


def remote(cls: type) -> _ActorFactory:
    """Decorator/wrapper turning a class into an actor factory."""
    if not isinstance(cls, type):
        raise RayliteError("raylite.remote expects a class")
    return _ActorFactory(cls)
