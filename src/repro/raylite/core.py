"""raylite core: actors, futures, object store.

Semantics follow Ray where it matters for the executors:

* ``remote(Cls)`` returns a factory; ``factory.remote(*args)`` constructs
  the actor in its own worker and returns an :class:`ActorHandle`;
* ``handle.method.remote(*args)`` enqueues a task and returns an
  :class:`ObjectRef` immediately; tasks of one actor run in FIFO order;
* ``get(ref)`` blocks; ``wait(refs, num_returns)`` splits ready/pending —
  both are event-driven (ObjectRef completion callbacks), never polling;
* :class:`ObjectRef` arguments to ``.remote()`` calls are resolved to
  their values at submission time (Ray's by-value task-argument rule),
  which is also what carries object-store values across the process
  boundary;
* exceptions raised in actor methods surface at ``get`` time;
* an optional serialization round-trip (``init(serialize=True)``) models
  Ray's object-store copy costs for transfer-sensitive benchmarks.

Two execution backends share this surface:

* ``backend="thread"`` (default) — one Python thread per actor.  NumPy
  code that releases the GIL runs in parallel; pure-Python actor code
  serializes.
* ``backend="process"`` — one ``multiprocessing`` worker per actor with
  a shared-memory data path (:mod:`repro.raylite.process_backend`).
  Pure-Python/CPU-bound actors scale with cores.

Select globally via ``init(backend=...)`` or per-actor via
``remote(Cls).options(backend="process")``.  ``shutdown()`` reaps every
worker (thread or process) and fails still-pending refs with a clear
:class:`RayliteError` so no caller is left hanging.
"""

from __future__ import annotations

import atexit
import itertools
import pickle
import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.utils.errors import RLGraphError


class RayliteError(RLGraphError):
    """Raised for framework-level failures (not actor exceptions)."""


_BACKENDS = ("thread", "process")


class _Config:
    serialize = False
    initialized = True
    backend = "thread"
    start_method: Optional[str] = None


_config = _Config()
_actors: List[Any] = []
_actors_lock = threading.Lock()


def init(serialize: bool = False, backend: Optional[str] = None,
         start_method: Optional[str] = None) -> None:
    """Configure the runtime (optional; defaults are live).

    ``backend`` sets the default actor backend (``"thread"`` or
    ``"process"``); ``None`` leaves the current default untouched.
    ``start_method`` picks the multiprocessing start method for process
    actors (default: fork where available, else spawn).
    """
    _config.serialize = serialize
    if backend is not None:
        if backend not in _BACKENDS:
            raise RayliteError(
                f"Unknown backend {backend!r}; expected one of {_BACKENDS}")
        _config.backend = backend
    if start_method is not None:
        _config.start_method = start_method
    _config.initialized = True


def register_actor(handle) -> None:
    with _actors_lock:
        _actors.append(handle)


def shutdown() -> None:
    """Reap all actor workers (threads and processes).

    Queued-but-unfinished tasks fail with :class:`RayliteError`; callers
    blocked in ``get``/``wait`` on those refs wake up immediately
    instead of hanging.  Registered via ``atexit`` so stray
    non-daemonic actor processes cannot wedge interpreter exit.
    """
    with _actors_lock:
        actors = list(_actors)
        _actors.clear()
    for actor in actors:
        actor._stop()


atexit.register(shutdown)


def kill(handle) -> None:
    """Stop one actor (Ray's ``ray.kill``); pending tasks fail."""
    with _actors_lock:
        try:
            _actors.remove(handle)
        except ValueError:
            pass
    handle._stop()


def _maybe_copy(value):
    if _config.serialize:
        return pickle.loads(pickle.dumps(value))
    return value


class ObjectRef:
    """A future for a task result (or a ``put`` value).

    Completion is event-based: waiters either block on the internal
    event (:meth:`result`) or register callbacks
    (:meth:`add_done_callback`, used by :func:`wait`) — there is no
    polling loop anywhere in the runtime.
    """

    _ids = itertools.count()

    def __init__(self):
        self.id = next(ObjectRef._ids)
        self._event = threading.Event()
        self._value = None
        self._error: Optional[BaseException] = None
        self._lock = threading.Lock()
        self._callbacks: List[Callable[["ObjectRef"], None]] = []

    def _settle(self, value, error: Optional[BaseException]) -> None:
        with self._lock:
            if self._event.is_set():  # first settle wins (e.g. shutdown race)
                return
            self._value = value
            self._error = error
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for callback in callbacks:
            callback(self)

    def _resolve(self, value):
        self._settle(value, None)

    def _fail(self, error: BaseException):
        self._settle(None, error)

    def add_done_callback(self, callback: Callable[["ObjectRef"], None]):
        """Run ``callback(self)`` on completion (immediately if done)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def remove_done_callback(self, callback) -> None:
        """Detach a pending callback (no-op if already fired/absent)."""
        with self._lock:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass

    def ready(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        if not self._event.wait(timeout):
            raise RayliteError(f"get() timed out after {timeout}s")
        if self._error is not None:
            raise self._error
        return _maybe_copy(self._value)

    def __repr__(self):
        state = "ready" if self.ready() else "pending"
        return f"<ObjectRef #{self.id} {state}>"


def put(value) -> ObjectRef:
    """Store a value in the object store (returns a resolved ref)."""
    ref = ObjectRef()
    ref._resolve(_maybe_copy(value))
    return ref


def get(refs, timeout: Optional[float] = None):
    """Resolve a ref or a list of refs (blocking)."""
    if isinstance(refs, ObjectRef):
        return refs.result(timeout)
    return [r.result(timeout) for r in refs]


def wait(refs: Sequence[ObjectRef], num_returns: int = 1,
         timeout: Optional[float] = None) -> Tuple[List[ObjectRef], List[ObjectRef]]:
    """Block until ``num_returns`` refs are ready (or timeout).

    Returns (ready, pending) preserving input order within each list.
    Event-based: completion callbacks trip one shared event, so waiting
    costs no CPU regardless of how long the tasks run.
    """
    if num_returns > len(refs):
        raise RayliteError(
            f"num_returns {num_returns} > number of refs {len(refs)}")
    target = threading.Event()
    unique = {r.id: r for r in refs}
    _on_done = None
    if num_returns <= 0:
        target.set()
    else:
        # A ref listed twice counts twice toward num_returns (it will
        # appear twice in the ready list), but registers one callback.
        multiplicity: Dict[int, int] = {}
        for ref in refs:
            multiplicity[ref.id] = multiplicity.get(ref.id, 0) + 1
        state = {"remaining": num_returns}
        state_lock = threading.Lock()

        def _on_done(ref: ObjectRef) -> None:
            with state_lock:
                state["remaining"] -= multiplicity[ref.id]
                if state["remaining"] > 0:
                    return
            target.set()

        for ref in unique.values():
            ref.add_done_callback(_on_done)
    target.wait(timeout)
    if _on_done is not None:
        # Detach from still-pending refs: polling callers (executors
        # re-waiting every few ms) must not accumulate dead closures.
        for ref in unique.values():
            ref.remove_done_callback(_on_done)
    ready = [r for r in refs if r.ready()]
    ready_ids = {r.id for r in ready}
    return ready, [r for r in refs if r.id not in ready_ids]


def _resolve_ref_args(args, kwargs):
    """Ray's by-value rule: ObjectRef task arguments resolve to values
    before the task ships (this is what carries object-store entries
    across the process boundary)."""
    def _res(value):
        return value.result() if isinstance(value, ObjectRef) else value

    return (tuple(_res(a) for a in args),
            {k: _res(v) for k, v in kwargs.items()})


class _Task:
    __slots__ = ("method_name", "args", "kwargs", "ref")

    def __init__(self, method_name, args, kwargs, ref):
        self.method_name = method_name
        self.args = args
        self.kwargs = kwargs
        self.ref = ref


class _RemoteMethod:
    """Bound ``.remote()`` callable for one actor method."""

    def __init__(self, handle, name: str):
        self._handle = handle
        self._name = name

    def remote(self, *args, **kwargs) -> ObjectRef:
        args, kwargs = _resolve_ref_args(args, kwargs)
        return self._handle._submit(self._name, args, kwargs)

    def __call__(self, *args, **kwargs):
        raise RayliteError(
            f"Actor methods must be called with .remote(): {self._name}")


class ActorHandle:
    """A handle to an actor running in its own thread."""

    def __init__(self, cls: type, args, kwargs, name: str = ""):
        self._cls = cls
        self._name = name or f"{cls.__name__}-{id(self) & 0xFFFF:x}"
        self._mailbox: "queue.Queue[Optional[_Task]]" = queue.Queue()
        self._instance = None
        self._init_error: Optional[BaseException] = None
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._pending: Dict[int, ObjectRef] = {}
        self._pending_lock = threading.Lock()
        self._death_callbacks: List[Callable[["ActorHandle"], None]] = []
        self._death_notified = False
        self._death_lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._run, args=(args, kwargs), daemon=True,
            name=f"raylite-{self._name}")
        self._thread.start()
        self._started.wait()
        if self._init_error is not None:
            raise self._init_error
        register_actor(self)

    # -- liveness -----------------------------------------------------------
    def is_alive(self) -> bool:
        """Liveness probe: the actor loop is still serving its mailbox.

        Supervisors (:mod:`repro.execution.supervision`) poll this; a
        deliberately stopped actor counts as dead too — the supervisor
        only restarts actors it owns, so the distinction lives in the
        crash flag carried by death callbacks, not here.
        """
        return not self._stopped.is_set() and self._thread.is_alive()

    def add_death_callback(
            self, callback: Callable[["ActorHandle"], None]) -> None:
        """Run ``callback(handle)`` once if the actor dies *unexpectedly*
        (its worker vanishing without :func:`kill`/:func:`shutdown`).
        Thread actors only die with the interpreter, so for this backend
        the callback is registered for surface parity and fires only if
        the actor thread is found dead while not stopped."""
        fire = False
        with self._death_lock:
            if self._death_notified:
                fire = True
            elif not self._thread.is_alive() and not self._stopped.is_set():
                self._death_notified = True
                fire = True
            else:
                self._death_callbacks.append(callback)
        if fire:
            callback(self)

    def _notify_death(self) -> None:
        with self._death_lock:
            if self._death_notified:
                return
            self._death_notified = True
            callbacks, self._death_callbacks = self._death_callbacks, []
        for callback in callbacks:
            try:
                callback(self)
            except Exception:  # pragma: no cover - defensive
                pass

    # -- actor loop ---------------------------------------------------------
    def _run(self, args, kwargs):
        try:
            self._instance = self._cls(*args, **kwargs)
        except BaseException as exc:  # surfaced to the creator
            self._init_error = exc
            self._started.set()
            return
        self._started.set()
        while not self._stopped.is_set():
            try:
                task = self._mailbox.get(timeout=0.1)
            except queue.Empty:
                continue
            if task is None:
                break
            try:
                method = getattr(self._instance, task.method_name)
                task.ref._resolve(method(*task.args, **task.kwargs))
            except BaseException as exc:
                task.ref._fail(exc)
            finally:
                with self._pending_lock:
                    self._pending.pop(task.ref.id, None)

    def _submit(self, method_name: str, args, kwargs) -> ObjectRef:
        if self._stopped.is_set():
            raise RayliteError(f"Actor {self._name} is stopped")
        if not hasattr(self._cls, method_name):
            raise RayliteError(
                f"Actor {self._cls.__name__} has no method {method_name!r}")
        ref = ObjectRef()
        args = tuple(_maybe_copy(a) for a in args)
        kwargs = {k: _maybe_copy(v) for k, v in kwargs.items()}
        with self._pending_lock:
            self._pending[ref.id] = ref
        self._mailbox.put(_Task(method_name, args, kwargs, ref))
        return ref

    def num_pending(self) -> int:
        """Tasks submitted but not yet completed (mailbox depth + any
        in-flight task) — the load signal schedulers route on."""
        with self._pending_lock:
            return len(self._pending)

    def _stop(self):
        self._stopped.set()
        self._mailbox.put(None)
        self._thread.join(timeout=5.0)
        # Fail whatever never ran (queued tasks, or an in-flight task on
        # a wedged thread): blocked getters wake with a clear error.
        with self._pending_lock:
            pending, self._pending = self._pending, {}
        for ref in pending.values():
            ref._fail(RayliteError(
                f"raylite.shutdown: actor {self._name} stopped; "
                f"pending tasks cancelled"))

    def __getattr__(self, name: str) -> _RemoteMethod:
        if name.startswith("_"):
            raise AttributeError(name)
        return _RemoteMethod(self, name)

    def __repr__(self):
        return f"<ActorHandle {self._name}>"


def _make_handle(cls: type, args, kwargs, name: str = "",
                 backend: Optional[str] = None,
                 start_method: Optional[str] = None):
    backend = backend or _config.backend
    if backend == "thread":
        return ActorHandle(cls, args, kwargs, name=name)
    if backend == "process":
        from repro.raylite.process_backend import ProcessActorHandle
        return ProcessActorHandle(
            cls, args, kwargs, name=name,
            start_method=start_method or _config.start_method)
    raise RayliteError(
        f"Unknown backend {backend!r}; expected one of {_BACKENDS}")


class _ActorFactory:
    def __init__(self, cls: type):
        self._cls = cls

    def remote(self, *args, **kwargs):
        return _make_handle(self._cls, args, kwargs)

    def options(self, name: str = "", backend: Optional[str] = None,
                start_method: Optional[str] = None):
        """Per-actor overrides (Ray's ``.options()``): display ``name``,
        execution ``backend`` and process ``start_method``."""
        factory = self
        if backend is not None and backend not in _BACKENDS:
            raise RayliteError(
                f"Unknown backend {backend!r}; expected one of {_BACKENDS}")

        class _Configured:
            def remote(self, *args, **kwargs):
                return _make_handle(factory._cls, args, kwargs, name=name,
                                    backend=backend,
                                    start_method=start_method)

        return _Configured()


def remote(cls: type) -> _ActorFactory:
    """Decorator/wrapper turning a class into an actor factory."""
    if not isinstance(cls, type):
        raise RayliteError("raylite.remote expects a class")
    return _ActorFactory(cls)
