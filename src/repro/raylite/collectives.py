"""Shared-memory collectives for data-parallel learner groups.

The learner group's all-reduce never ships gradient bytes through a
pipe: every rank owns one persistent named shared-memory block holding
its flat gradient slab (float32, ParamSlab order), acquired ONCE from
the :class:`~repro.raylite.shm.BlockPool` and rewritten in place every
round — no per-round pickle, no per-round alloc/unlink.  The driver
only dispatches tiny step tokens (`reduce_step(s)` / `gather_step(s)`)
and barriers on them; the data plane is pure memcpy/add over the
blocks.

Two schedules, both deterministic (fixed chunk boundaries, fixed
summation order — repeated runs are bitwise identical):

* **ring** (default for world_size > 2): the classic bandwidth-optimal
  reduce-scatter + all-gather.  The flat vector splits into
  ``world_size`` near-equal chunks; at reduce step ``s`` rank ``r``
  adds chunk ``(r - 1 - s) % K`` of its ring predecessor's block into
  its own, so after ``K - 1`` barriered steps rank ``r`` owns the fully
  reduced chunk ``(r + 1) % K``; ``K - 1`` gather steps then copy the
  finished chunks around the ring.  Each step moves exactly one
  chunk per rank — ~2·N bytes total per rank, independent of K.
* **tree** (fallback, and the world_size ≤ 2 default): binomial-tree
  pairwise adds — at step ``s`` (stride ``2**s``) every active rank
  adds its partner's whole block into its own; after ``ceil(log2 K)``
  steps rank 0's block holds the sum.  Fewer barriers than the ring
  for tiny groups, at the cost of O(N·log K) traffic.

Within one barriered step no two ranks touch the same chunk of the
same block (the schedules are disjoint by construction), so the only
synchronization required is the driver's barrier between steps.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.raylite.shm import BlockPool, get_pool

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - ancient/exotic platforms
    shared_memory = None


# -- schedule arithmetic (pure functions; unit-testable) ----------------------

def chunk_bounds(num_elements: int, world_size: int) -> List[int]:
    """Ring chunk boundaries: ``world_size`` near-equal contiguous
    chunks (first ``num_elements % world_size`` chunks one longer)."""
    base, rem = divmod(int(num_elements), int(world_size))
    bounds = [0]
    for c in range(world_size):
        bounds.append(bounds[-1] + base + (1 if c < rem else 0))
    return bounds


def ring_reduce_chunk(rank: int, step: int, world_size: int) -> int:
    """Chunk rank ``rank`` accumulates at reduce-scatter step ``step``."""
    return (rank - 1 - step) % world_size


def ring_gather_chunk(rank: int, step: int, world_size: int) -> int:
    """Chunk rank ``rank`` copies from its predecessor at gather step."""
    return (rank - step) % world_size


def ring_num_steps(world_size: int) -> int:
    return max(world_size - 1, 0)


def tree_partner(rank: int, step: int, world_size: int) -> Optional[int]:
    """The rank whose block ``rank`` absorbs at tree step ``step``
    (None when ``rank`` is idle this step)."""
    stride = 1 << step
    if rank % (2 * stride) == 0 and rank + stride < world_size:
        return rank + stride
    return None


def tree_num_steps(world_size: int) -> int:
    return max(int(math.ceil(math.log2(world_size))), 0) if world_size > 1 \
        else 0


# -- driver side --------------------------------------------------------------

class SlabRing:
    """Driver-owned arena: one pooled block per rank, plus zero-copy
    driver views (the driver reads published weights straight out of
    rank 0's block).  ``available`` is False when shared memory could
    not be provisioned — callers fall back to pipe transport."""

    def __init__(self, world_size: int, capacity: int,
                 pool: Optional[BlockPool] = None):
        self.world_size = int(world_size)
        self.capacity = int(capacity)
        self.nbytes = self.capacity * 4
        self._pool = pool if pool is not None else get_pool()
        blocks = []
        for _ in range(self.world_size):
            shm = self._pool.acquire(self.nbytes)
            if shm is None:
                for b in blocks:
                    self._pool.release(b)
                blocks = None
                break
            blocks.append(shm)
        self._blocks = blocks
        if blocks is not None:
            for r in range(self.world_size):
                self.view_of(r).fill(0.0)

    @property
    def available(self) -> bool:
        return self._blocks is not None

    def names(self) -> List[str]:
        return [b.name for b in self._blocks]

    def view_of(self, rank: int) -> np.ndarray:
        """Driver-side float32 view over rank ``rank``'s block."""
        return np.ndarray((self.capacity,), dtype=np.float32,
                          buffer=self._blocks[rank].buf)

    def release(self) -> None:
        """Return every block to the pool (reused by the next group)."""
        if self._blocks is None:
            return
        for b in self._blocks:
            self._pool.release(b)
        self._blocks = None


# -- member (replica) side ----------------------------------------------------

class RingMember:
    """One rank's attachment to the group's blocks.

    Pure data plane: the driver supplies the barrier between step
    calls; within a step the schedules above guarantee no two ranks
    write/read overlapping chunk regions.  Blocks attach lazily on
    first use and are immediately disowned (the driver's pool is the
    single owner — a SIGKILL'd member leaks nothing).
    """

    def __init__(self, rank: int, world_size: int, names: Sequence[str],
                 capacity: int, reduce_elements: int):
        self.rank = int(rank)
        self.world_size = int(world_size)
        self.names = list(names)
        self.capacity = int(capacity)
        self.reduce_elements = int(reduce_elements)
        self.bounds = chunk_bounds(self.reduce_elements, self.world_size)
        self._shms = None
        self._views: Optional[List[np.ndarray]] = None

    def _ensure(self) -> List[np.ndarray]:
        if self._views is None:
            # Attaching re-registers the name with the (shared) resource
            # tracker — a set, so the entry stays the pool's single one.
            # Members never unlink and never disown: the pool's drain()
            # performs the one balancing unlink at driver exit.
            shms = [shared_memory.SharedMemory(name=n) for n in self.names]
            self._shms = shms
            self._views = [
                np.ndarray((self.capacity,), dtype=np.float32, buffer=s.buf)
                for s in shms]
        return self._views

    def close(self) -> None:
        views, self._views = self._views, None
        shms, self._shms = self._shms, None
        del views
        for s in shms or []:
            try:
                s.close()
            except BufferError:  # pragma: no cover - stray export
                pass

    # -- data plane -----------------------------------------------------------
    def write(self, vec: np.ndarray, offset: int = 0) -> None:
        """Write ``vec`` into this rank's block at ``offset``."""
        views = self._ensure()
        views[self.rank][offset:offset + len(vec)] = vec

    def read(self, rank: int, n: Optional[int] = None,
             offset: int = 0) -> np.ndarray:
        """A (zero-copy) view of ``rank``'s block — copy before holding."""
        views = self._ensure()
        n = self.reduce_elements if n is None else int(n)
        return views[rank][offset:offset + n]

    # -- ring schedule --------------------------------------------------------
    def reduce_step(self, step: int) -> None:
        views = self._ensure()
        c = ring_reduce_chunk(self.rank, step, self.world_size)
        lo, hi = self.bounds[c], self.bounds[c + 1]
        src = views[(self.rank - 1) % self.world_size]
        views[self.rank][lo:hi] += src[lo:hi]

    def gather_step(self, step: int) -> None:
        views = self._ensure()
        c = ring_gather_chunk(self.rank, step, self.world_size)
        lo, hi = self.bounds[c], self.bounds[c + 1]
        src = views[(self.rank - 1) % self.world_size]
        views[self.rank][lo:hi] = src[lo:hi]

    # -- tree schedule --------------------------------------------------------
    def tree_step(self, step: int) -> bool:
        """Absorb this step's partner block; False when idle."""
        partner = tree_partner(self.rank, step, self.world_size)
        if partner is None:
            return False
        views = self._ensure()
        n = self.reduce_elements
        views[self.rank][:n] += views[partner][:n]
        return True


def allreduce_steps(algorithm: str, world_size: int) -> List[str]:
    """The barriered step sequence for one all-reduce round, as method
    names on :class:`RingMember` paired with step indices — the driver
    iterates this to orchestrate the round."""
    if algorithm == "ring":
        steps = [("reduce_step", s) for s in range(ring_num_steps(world_size))]
        steps += [("gather_step", s)
                  for s in range(ring_num_steps(world_size))]
        return steps
    if algorithm == "tree":
        return [("tree_step", s) for s in range(tree_num_steps(world_size))]
    raise ValueError(f"Unknown all-reduce algorithm {algorithm!r} "
                     f"(expected 'ring' or 'tree')")
