"""raylite: a minimal in-process actor framework (Ray substitute).

Implements the slice of Ray's API the paper's distributed executors rely
on (DESIGN.md §2): actor handles with ``.remote()`` method calls returning
futures (ObjectRef), ``get``/``wait``, and an object store. Each actor
runs a dedicated thread with a mailbox, so NumPy-heavy actor methods
(which release the GIL) execute with real parallelism.
"""

from repro.raylite.core import (
    ActorHandle,
    ObjectRef,
    RayliteError,
    get,
    init,
    put,
    remote,
    shutdown,
    wait,
)

__all__ = [
    "ActorHandle",
    "ObjectRef",
    "RayliteError",
    "remote",
    "get",
    "put",
    "wait",
    "init",
    "shutdown",
]
