"""raylite: a minimal actor framework (Ray substitute).

Implements the slice of Ray's API the paper's distributed executors rely
on (DESIGN.md §2): actor handles with ``.remote()`` method calls returning
futures (ObjectRef), ``get``/``wait``, and an object store.  Two
backends share that surface: ``"thread"`` runs each actor on a
dedicated thread with a mailbox (NumPy-heavy methods, which release the
GIL, execute with real parallelism), and ``"process"`` runs each actor
in a ``multiprocessing`` worker with a shared-memory data path so
pure-Python/CPU-bound actors scale with cores.  Select via
``init(backend=...)`` or ``remote(Cls).options(backend=...)``.
"""

from repro.raylite.core import (
    ActorHandle,
    ObjectRef,
    RayliteError,
    get,
    init,
    kill,
    put,
    remote,
    shutdown,
    wait,
)
from repro.raylite.process_backend import ProcessActorHandle

__all__ = [
    "ActorHandle",
    "ProcessActorHandle",
    "ObjectRef",
    "RayliteError",
    "remote",
    "get",
    "put",
    "wait",
    "init",
    "kill",
    "shutdown",
]
