"""Parallel execution specs: one switch for thread vs. process backends.

Every executor accepts a ``parallel_spec`` selecting how its actors (and
optionally their env vectors) execute:

* ``None`` / ``"thread"`` — the thread backends everywhere (seed
  behavior: raylite thread actors, thread-based vector envs);
* ``"process"`` — raylite process actors (real multi-core parallelism
  for the NumPy-interpreted agents and pure-Python envs);
* a dict for fine-grained control::

      {
          "backend": "process",        # raylite actor backend
          "start_method": "fork",      # multiprocessing start method
          "env_backend": "subproc",    # default vector-env engine when
                                       # vector_env_spec is None
          "env_workers": 4,            # workers for that engine
      }

* a :class:`ParallelSpec` instance (passed through).

The spec only supplies *defaults*: an explicit ``vector_env_spec`` on
the executor always wins over ``env_backend``.
"""

from __future__ import annotations

from typing import Optional

from repro.utils.errors import RLGraphError

_BACKENDS = ("thread", "process")


class ParallelSpec:
    """Resolved parallel-execution configuration."""

    def __init__(self, backend: str = "thread",
                 start_method: Optional[str] = None,
                 env_backend: Optional[str] = None,
                 env_workers: Optional[int] = None):
        if backend not in _BACKENDS:
            raise RLGraphError(
                f"Unknown parallel backend {backend!r}; "
                f"expected one of {_BACKENDS}")
        self.backend = backend
        self.start_method = start_method
        self.env_backend = env_backend
        self.env_workers = env_workers

    @property
    def is_process(self) -> bool:
        return self.backend == "process"

    def vector_env_spec_default(self, vector_env_spec):
        """Apply ``env_backend`` as the engine default: an explicit
        ``vector_env_spec`` always wins."""
        if vector_env_spec is not None or self.env_backend is None:
            return vector_env_spec
        spec = {"type": self.env_backend}
        if self.env_backend == "subproc":
            if self.env_workers is not None:
                spec["num_workers"] = self.env_workers
            if self.start_method is not None:
                spec["start_method"] = self.start_method
        elif self.env_workers is not None:
            spec["num_threads"] = self.env_workers
        return spec

    def actor_factory(self, cls, name: str = ""):
        """A raylite actor factory for ``cls`` bound to this backend."""
        from repro import raylite
        return raylite.remote(cls).options(
            name=name, backend=self.backend, start_method=self.start_method)

    def __repr__(self):
        return (f"ParallelSpec(backend={self.backend!r}, "
                f"start_method={self.start_method!r}, "
                f"env_backend={self.env_backend!r}, "
                f"env_workers={self.env_workers!r})")


def notify_weight_listeners(listeners, weights) -> None:
    """Push freshly published learner weights to eval-traffic listeners.

    Executors call this at every weight-publication point so a policy
    server (:mod:`repro.serving`) can serve eval traffic *while* training
    — each listener is either a callable taking the flat weight vector or
    an object with ``set_weights`` (e.g. a ``PolicyServer`` or an
    ``InferenceWorkerPool``).  Listener failures must never take down the
    training loop; they surface as a warning on stderr instead.
    """
    if not listeners:
        return
    for listener in listeners:
        push = getattr(listener, "set_weights", listener)
        try:
            push(weights)
        except Exception as exc:  # pragma: no cover - defensive
            import sys
            print(f"weight listener {listener!r} failed: {exc}",
                  file=sys.stderr)


def resolve_parallel_spec(spec) -> ParallelSpec:
    """Resolve a ``parallel_spec`` config value (see module docstring)."""
    if isinstance(spec, ParallelSpec):
        return spec
    if spec is None:
        return ParallelSpec()
    if isinstance(spec, str):
        return ParallelSpec(backend=spec)
    if isinstance(spec, dict):
        unknown = set(spec) - {"backend", "start_method", "env_backend",
                               "env_workers"}
        if unknown:
            raise RLGraphError(
                f"Unknown parallel_spec keys {sorted(unknown)}")
        return ParallelSpec(backend=spec.get("backend", "thread"),
                            start_method=spec.get("start_method"),
                            env_backend=spec.get("env_backend"),
                            env_workers=spec.get("env_workers"))
    raise RLGraphError(
        f"parallel_spec must be None, str, dict or ParallelSpec, "
        f"got {type(spec).__name__}")
