"""SyncBatchExecutor: synchronous parallel rollout collection on raylite.

The paper notes that "implementing other distributed semantics on Ray
with RLgraph only requires extending the generic Ray executor to
implement a coordination loop" (§5.1). This executor is that second
loop: the A2C/PPO pattern — all workers collect one on-policy rollout
with the *current* weights, the learner updates once on the merged
batch, weights broadcast, repeat. Contrast with the asynchronous Ape-X
loop in :mod:`repro.execution.ray.apex_executor`.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import raylite
from repro.agents.actor_critic_agent import discounted_returns
from repro.execution.learner_group import LearnerGroup, resolve_learner_spec
from repro.execution.parallel import (
    notify_weight_listeners,
    resolve_parallel_spec,
)
from repro.execution.supervision import (
    ReplicaFactory,
    Supervisor,
    resolve_supervision_spec,
)
from repro.execution.worker import build_vector_env, snapshot_fn
from repro.utils.errors import RLGraphError


class A2CRolloutActor:
    """Collects fixed-length on-policy rollouts with the pushed weights."""

    def __init__(self, agent_factory: Callable, env_factory: Callable,
                 num_envs: int = 2, rollout_length: int = 32,
                 worker_index: int = 0, vector_env_spec=None,
                 parallel_spec=None):
        try:
            self.agent = agent_factory(worker_index=worker_index)
        except TypeError:
            self.agent = agent_factory()
        self.vector_env = build_vector_env(
            env_factory, num_envs, worker_index * 1000,
            vector_env_spec=vector_env_spec, parallel_spec=parallel_spec)
        self._snap = snapshot_fn(self.vector_env)
        self.rollout_length = int(rollout_length)
        self._states = self.vector_env.reset_all()
        self.env_frames = 0
        self._episodes_shipped = 0

    def set_weights(self, weights) -> int:
        self.agent.set_weights(weights)
        return 0

    def rollout(self, discount: float) -> Dict[str, np.ndarray]:
        """One on-policy rollout; returns flat arrays + returns."""
        traj = {"states": [], "actions": [], "rewards": [], "terminals": []}
        for _ in range(self.rollout_length):
            actions, pre = self.agent.get_actions(self._states)
            # Snapshot before dispatch (zero-copy buffer safety), then
            # overlap trajectory assembly with env stepping.
            pre = self._snap(pre)
            self.vector_env.step_async(actions)
            traj["states"].append(pre)
            traj["actions"].append(actions)
            next_states, rewards, terminals = self.vector_env.step_wait()
            traj["rewards"].append(rewards)
            traj["terminals"].append(terminals)
            self._states = next_states
            self.env_frames += self.vector_env.num_envs
        # Per-env discounted returns, then flattened (T*E).
        rewards = np.asarray(traj["rewards"], np.float32)     # (T, E)
        terminals = np.asarray(traj["terminals"], bool)
        returns = np.empty_like(rewards)
        for e in range(rewards.shape[1]):
            returns[:, e] = discounted_returns(rewards[:, e], terminals[:, e],
                                               discount)
        flat = lambda arr: np.asarray(arr).reshape(
            (-1,) + np.asarray(arr).shape[2:])
        # Ship only episodes finished since the previous rollout; the
        # executor accumulates across iterations.
        new_returns, self._episodes_shipped = \
            self.vector_env.finished_returns_since(self._episodes_shipped)
        return {
            "states": flat(traj["states"]),
            "actions": flat(traj["actions"]),
            "returns": returns.reshape(-1),
            "episode_returns": list(new_returns),
        }

    def get_stats(self) -> Dict:
        return {"env_frames": self.env_frames,
                "episode_returns": list(
                    self.vector_env.finished_episode_returns)}


class SyncBatchExecutor:
    """Synchronous parallel A2C: rollout barrier -> one update -> sync."""

    def __init__(self, learner_agent, agent_factory: Callable,
                 env_factory: Callable, num_workers: int = 2,
                 envs_per_worker: int = 2, rollout_length: int = 32,
                 discount: float = 0.99, vector_env_spec=None,
                 parallel_spec=None, weight_listeners=None,
                 supervision_spec=None, learner_spec=None):
        self.learner = learner_agent
        self.discount = float(discount)
        # Eval-during-training hook: every published weight vector also
        # goes to these listeners (e.g. a serving PolicyServer).
        self.weight_listeners = list(weight_listeners or [])
        self.parallel = resolve_parallel_spec(parallel_spec)
        # Data-parallel learner group: K replicas shard each merged
        # batch, all-reduce flat gradient slabs over shared memory, and
        # present the same update/get_weights interface as one agent.
        lspec = resolve_learner_spec(learner_spec)
        if lspec is not None:
            self.learner = LearnerGroup(
                learner_agent, agent_factory=agent_factory, spec=lspec,
                parallel_spec=self.parallel,
                supervision_spec=supervision_spec)
        factories = [
            ReplicaFactory(self.parallel, A2CRolloutActor,
                           agent_factory, env_factory,
                           num_envs=envs_per_worker,
                           rollout_length=rollout_length, worker_index=i,
                           vector_env_spec=vector_env_spec,
                           parallel_spec=self.parallel)
            for i in range(num_workers)
        ]
        self.workers = [factory() for factory in factories]
        self.supervision = resolve_supervision_spec(supervision_spec)
        self.supervisor = (Supervisor(self.supervision)
                           if self.supervision.enabled else None)
        if self.supervisor is not None:
            for i, (worker, factory) in enumerate(
                    zip(self.workers, factories)):
                self.supervisor.register(
                    f"a2c-worker-{i}", worker, factory,
                    on_restart=lambda h: h.set_weights.remote(
                        self.learner.get_weights(flat=True)))

    def _recover_worker(self, worker):
        replacement = self.supervisor.ensure_alive(worker)
        if replacement is not worker:
            self.workers = [replacement if w is worker else w
                            for w in self.workers]
        return replacement

    def execute_workload(self, num_iterations: int = 10) -> Dict:
        t0 = time.perf_counter()
        losses: List[float] = []
        episode_returns: List[float] = []
        for _ in range(num_iterations):
            # Barrier: all workers roll out with current weights.  In
            # supervised mode a worker that died is restarted (weights
            # re-pushed by the restart hook) and this iteration trains
            # on the surviving rollouts.
            pairs = []
            for worker in list(self.workers):
                try:
                    pairs.append((worker.rollout.remote(self.discount),
                                  worker))
                except BaseException:
                    if self.supervisor is None:
                        raise
                    worker = self._recover_worker(worker)
                    pairs.append((worker.rollout.remote(self.discount),
                                  worker))
            rollouts = []
            for ref, worker in pairs:
                try:
                    rollouts.append(raylite.get(ref))
                except BaseException:
                    if self.supervisor is None:
                        raise
                    self._recover_worker(worker)  # rollout lost
            if not rollouts:
                continue
            for r in rollouts:
                episode_returns.extend(r.pop("episode_returns", []))
            merged = {
                "states": np.concatenate([r["states"] for r in rollouts]),
                "actions": np.concatenate([r["actions"] for r in rollouts]),
                "returns": np.concatenate([r["returns"] for r in rollouts]),
            }
            total, _, _ = self.learner.update(merged)
            losses.append(total)
            # Flat broadcast: one ndarray (one shm block in process mode).
            weights = self.learner.get_weights(flat=True)
            for worker in list(self.workers):
                try:
                    raylite.get(worker.set_weights.remote(weights))
                except BaseException:
                    if self.supervisor is None:
                        raise
                    self._recover_worker(worker)
            notify_weight_listeners(self.weight_listeners, weights)
        stats = []
        for worker in self.workers:
            try:
                stats.append(raylite.get(worker.get_stats.remote()))
            except BaseException:
                if self.supervisor is None:
                    raise
        wall = time.perf_counter() - t0
        env_frames = sum(s["env_frames"] for s in stats)
        return {
            "env_frames": env_frames,
            "env_frames_per_second": env_frames / wall,
            "updates": num_iterations,
            "wall_time": wall,
            "losses": losses,
            "mean_return": (float(np.mean(episode_returns[-20:]))
                            if episode_returns else None),
        }
