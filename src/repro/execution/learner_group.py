"""Data-parallel learner group: sharded gradients, one fused step.

The group replaces the executor's single learner with ``K`` replica
actors that together behave like one learner (paper §5.2's distributed
semantics, applied to the *update* side of the loop):

1. the driver shards each training batch deterministically through
   :func:`~repro.components.common.batch_splitter.split_batch` (the last
   shard absorbs ``B % K`` rows — nothing is dropped);
2. every replica runs only the gradient half of the fused optimizer step
   (``Agent.get_gradients(flat=True)``) and writes its flat gradient
   slab — pre-scaled by ``n_k / B`` so the all-reduce SUM equals the
   full-batch mean — into its persistent pooled shared-memory block;
3. the slabs are all-reduced in place over those blocks
   (:mod:`repro.raylite.collectives` — ring reduce-scatter/all-gather,
   or a binomial tree for tiny groups); the driver only dispatches step
   tokens and barriers, no gradient bytes ever cross a pipe;
4. rank 0 applies ONE fused optimizer step to the averaged vector
   (``Agent.apply_gradients`` — the exact lowering of the in-graph
   step, so K=1 is bitwise-identical to a plain ``update``), publishes
   the new flat weight vector into the weight region of its block, and
   every other rank memcpy-scatters it back into its variables.

Block layout (float32 elements): ``[0, grad_n)`` is the reduce region,
rewritten every round; block 0 additionally carries the last published
weight vector at ``[grad_n, grad_n + weight_n)``.  Because collective
steps never touch the weight region, it is *always* a valid sync source:
a replica restarted by the supervisor mid-round rejoins by re-attaching
the ring and loading weights straight out of block 0 — no peer needs to
be alive to hand them over.  (A restarted rank 0 recovers its weights
the same way but loses optimizer slot state — Adam moments restart from
zero; checkpoints via :meth:`LearnerGroup.full_state` are the exact
recovery path, as they snapshot rank 0's complete state.)

When shared memory is unavailable the group degrades to driver-mediated
averaging over the normal pipe codec — slower, same numerics (fixed
rank-order summation either way, so repeated runs stay reproducible).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro import raylite
from repro.components.common.batch_splitter import shard_sizes, split_batch
from repro.execution.parallel import resolve_parallel_spec
from repro.execution.supervision import (
    ReplicaFactory,
    Supervisor,
    resolve_supervision_spec,
)
from repro.raylite.collectives import RingMember, SlabRing, allreduce_steps
from repro.utils.errors import RLGraphError

ALGORITHMS = ("auto", "ring", "tree")


class LearnerSpec:
    """Resolved configuration for a data-parallel learner group.

    ``algorithm="auto"`` picks the binomial tree for ``K <= 2`` (fewer
    barriers) and the bandwidth-optimal ring above that.  ``parallel``
    optionally overrides the executor's backend for the learner replicas
    only (e.g. process learners under thread rollout workers).
    ``agent_factory`` overrides the executor's worker factory when the
    learner config differs from the actors'.
    """

    def __init__(self, num_learners: int, algorithm: str = "auto",
                 agent_factory: Optional[Callable] = None, parallel=None):
        self.num_learners = int(num_learners)
        if self.num_learners < 1:
            raise RLGraphError("learner_spec: num_learners must be >= 1")
        if algorithm not in ALGORITHMS:
            raise RLGraphError(
                f"learner_spec: algorithm must be one of {ALGORITHMS}, "
                f"got {algorithm!r}")
        self.algorithm = algorithm
        self.agent_factory = agent_factory
        self.parallel = parallel

    def resolve_algorithm(self) -> str:
        if self.algorithm != "auto":
            return self.algorithm
        return "ring" if self.num_learners > 2 else "tree"


def resolve_learner_spec(spec) -> Optional[LearnerSpec]:
    """None/False -> no group (plain single learner); an int K -> a
    K-replica group with defaults; a dict -> :class:`LearnerSpec`
    kwargs; a spec passes through."""
    if spec is None or spec is False:
        return None
    if isinstance(spec, LearnerSpec):
        return spec
    if isinstance(spec, bool):  # True without a count is ambiguous
        raise RLGraphError(
            "learner_spec=True is ambiguous; pass the replica count")
    if isinstance(spec, int):
        return LearnerSpec(num_learners=spec)
    if isinstance(spec, dict):
        return LearnerSpec(**spec)
    raise RLGraphError(f"Cannot resolve learner_spec from {spec!r}")


class LearnerReplicaActor:
    """One learner replica: an agent plus its ring attachment.

    Pure data plane — the driving :class:`LearnerGroup` owns all
    control flow and barriers; every method here is one small remote
    call that returns a token-sized result (gradient bytes move through
    the shared blocks, never through the pipe, except in the no-shm
    fallback path).
    """

    def __init__(self, agent_factory: Callable, rank: int, world_size: int):
        try:
            self.agent = agent_factory(worker_index=rank)
        except TypeError:
            self.agent = agent_factory()
        self.rank = int(rank)
        self.world_size = int(world_size)
        self._member: Optional[RingMember] = None

    def ping(self) -> int:
        return self.rank

    # -- ring membership ------------------------------------------------------
    def setup_ring(self, names, capacity: int, reduce_elements: int) -> int:
        if self._member is not None:
            self._member.close()
        self._member = RingMember(self.rank, self.world_size, names,
                                  capacity, reduce_elements)
        return 0

    # -- state sync -----------------------------------------------------------
    def restore_full_state(self, state) -> int:
        self.agent.restore_full_state(state)
        return 0

    def full_state(self):
        return self.agent.full_state()

    def get_flat_weights(self):
        return self.agent.get_weights(flat=True)

    def get_weights_dict(self):
        return self.agent.get_weights(flat=False)

    def set_flat_weights(self, weights, updates: Optional[int] = None) -> int:
        self.agent.set_weights(np.asarray(weights, np.float32))
        if updates is not None:
            self.agent.updates = int(updates)
        return 0

    # -- one training round ---------------------------------------------------
    def compute_gradients(self, shard: Dict, scale: float) -> Dict:
        """Gradient half of the update on this replica's shard.

        The flat slab is pre-scaled by ``scale = n_k / B`` (so the
        group's SUM-reduction is the exact full-batch mean, uneven
        shards included) and written into this rank's block; only the
        small loss/TD stats return over the pipe.  Without a ring the
        scaled slab itself rides back in the stats dict (fallback)."""
        flat, stats = self.agent.get_gradients(shard, flat=True)
        scaled = flat * np.float32(scale)
        if self._member is not None:
            self._member.write(scaled)
            return stats
        stats = dict(stats)
        stats["flat_grads"] = scaled
        return stats

    def collective_step(self, method: str, step: int) -> int:
        """One barriered all-reduce step (``reduce_step`` /
        ``gather_step`` / ``tree_step``), named by the driver's
        :func:`allreduce_steps` schedule."""
        getattr(self._member, method)(step)
        return 0

    def apply_and_publish(self, weight_offset: int) -> Dict:
        """Rank 0 only: one fused optimizer step on the reduced vector
        (sitting in this rank's own block for both schedules), then
        publish the resulting flat weights at ``weight_offset``."""
        # Copy out of the shared block: the averaged vector must stay
        # intact for inspection while the step mutates variables.
        grad = np.array(self._member.read(self.rank), copy=True)
        synced = self.agent.apply_gradients(grad)
        self._member.write(self.agent.get_weights(flat=True),
                           offset=weight_offset)
        return {"synced": bool(synced), "updates": self.agent.updates}

    def apply_direct(self, grad) -> Dict:
        """No-shm fallback apply: gradient in, new weights out (pipe)."""
        synced = self.agent.apply_gradients(np.asarray(grad, np.float32))
        return {"synced": bool(synced), "updates": self.agent.updates,
                "weights": self.agent.get_weights(flat=True)}

    def load_weights(self, src_rank: int, n: int, offset: int,
                     updates: int) -> int:
        """Scatter the published flat weight vector (all trainables,
        target networks included — replicas never need their own sync
        cadence) from ``src_rank``'s block into this agent."""
        w = np.array(self._member.read(src_rank, n, offset), copy=True)
        self.agent.set_weights(w)
        self.agent.updates = int(updates)
        return 0

    def publish_weights(self, weight_offset: int) -> int:
        self._member.write(self.agent.get_weights(flat=True),
                           offset=weight_offset)
        return 0

    def shutdown(self) -> int:
        if self._member is not None:
            self._member.close()
            self._member = None
        return 0


class LearnerGroup:
    """``K`` learner replicas behind the single-learner interface.

    Executors treat a group exactly like an agent: ``update(batch)``
    returns the same tuple shape the wrapped agent class returns,
    ``get_weights(flat=True)`` is the broadcast vector (read zero-copy
    out of rank 0's block), ``full_state``/``restore_full_state``
    checkpoint through rank 0 (bitwise resume).  Faults compose with
    ``supervision_spec``: any replica death aborts the round, the
    supervisor restarts it, weights re-sync from block 0, and the whole
    round retries on the re-formed group (gradients recompute, so a
    half-reduced slab can never leak into a step).
    """

    def __init__(self, learner_agent, agent_factory: Optional[Callable],
                 spec=None, parallel_spec=None, supervision_spec=None,
                 pool=None):
        self.spec = resolve_learner_spec(spec)
        if self.spec is None:
            raise RLGraphError("LearnerGroup needs a resolved learner_spec")
        if getattr(learner_agent, "optimize", None) == "none":
            raise RLGraphError(
                "LearnerGroup requires a fused-capable optimize level "
                "(optimize='none' has no flat-gradient build path)")
        self.reference = learner_agent
        self.world_size = self.spec.num_learners
        self.algorithm = self.spec.resolve_algorithm()
        self.parallel = resolve_parallel_spec(
            self.spec.parallel if self.spec.parallel is not None
            else parallel_spec)
        factory = self.spec.agent_factory or agent_factory
        if factory is None:
            raise RLGraphError("LearnerGroup needs an agent_factory")

        self._grad_n = int(learner_agent.flat_grad_size())
        self._weight_n = int(learner_agent.flat_layout().total)
        self._weight_off = self._grad_n
        self._capacity = self._grad_n + self._weight_n
        self._shard_axis, self._shard_axes = learner_agent.shard_spec()
        # One pooled block per rank, acquired once and rewritten every
        # round (pool stats prove steady-state rounds allocate nothing).
        self.ring = SlabRing(self.world_size, self._capacity, pool=pool)

        self._factories = [
            ReplicaFactory(self.parallel, LearnerReplicaActor,
                           factory, rank=r, world_size=self.world_size)
            for r in range(self.world_size)
        ]
        self.replicas = [f() for f in self._factories]
        self.supervision = resolve_supervision_spec(supervision_spec)
        self.supervisor = (Supervisor(self.supervision)
                           if self.supervision.enabled else None)
        if self.supervisor is not None:
            for r, (handle, f) in enumerate(
                    zip(self.replicas, self._factories)):
                self.supervisor.register(f"learner-{r}", handle, f,
                                         on_restart=self._sync_restarted)

        # Seed every replica with the reference learner's complete state
        # so rank assignment is the ONLY difference between them.
        state = learner_agent.full_state()
        raylite.get([h.restore_full_state.remote(state)
                     for h in self.replicas])
        self.updates = int(learner_agent.updates)
        self._last_weights: Optional[np.ndarray] = None
        if self.ring.available:
            raylite.get([h.setup_ring.remote(self.ring.names(),
                                             self._capacity, self._grad_n)
                         for h in self.replicas])
            # Publish the initial weights so block 0 is a valid sync
            # source from round zero (restart hooks read it).
            view = self.ring.view_of(0)
            view[self._weight_off:self._weight_off + self._weight_n] = \
                learner_agent.get_weights(flat=True)
        else:
            self._last_weights = np.array(
                learner_agent.get_weights(flat=True), np.float32, copy=True)

    # -- fault tolerance ------------------------------------------------------
    @property
    def restarts(self) -> int:
        return self.supervisor.total_restarts if self.supervisor else 0

    def _sync_restarted(self, handle) -> None:
        """Rejoin a restarted replica: re-attach the ring, then load the
        last published weights out of block 0 — valid even mid-round,
        because collective steps never write the weight region."""
        if self.ring.available:
            raylite.get(handle.setup_ring.remote(
                self.ring.names(), self._capacity, self._grad_n))
            raylite.get(handle.load_weights.remote(
                0, self._weight_n, self._weight_off, self.updates))
        else:
            raylite.get(handle.set_flat_weights.remote(
                self._last_weights, self.updates))

    def _recover_all(self) -> None:
        for i, handle in enumerate(list(self.replicas)):
            replacement = self.supervisor.ensure_alive(handle)
            if replacement is not handle:
                self.replicas[i] = replacement

    # -- the group update -----------------------------------------------------
    def update(self, batch: Dict):
        """Shard -> gradient -> all-reduce -> ONE fused step -> re-sync.

        Return shape mirrors the wrapped agent's ``update``:
        ``(loss, td)`` for TD agents (TD errors concatenated back in
        original row order), else the tuple of batch-weighted mean
        losses."""
        attempts = 0
        while True:
            try:
                return self._round(batch)
            except BaseException:
                if self.supervisor is None:
                    raise
                # A replica died mid-round: restart it (SupervisionError
                # propagates once the backoff budget is exhausted), then
                # retry the whole round on the re-formed group.
                self._recover_all()
                attempts += 1
                if attempts > self.supervision.backoff.max_restarts:
                    raise

    def _round(self, batch: Dict):
        if self.supervisor is not None:
            self.supervisor.probe()
        shards = split_batch(batch, self.world_size, remainder="last",
                             axis=self._shard_axis, axes=self._shard_axes)
        first = next(k for k in batch
                     if self._shard_axes.get(k, self._shard_axis) is not None)
        total_rows = np.asarray(batch[first]).shape[
            self._shard_axes.get(first, self._shard_axis)]
        sizes = shard_sizes(total_rows, self.world_size, remainder="last")

        stats = raylite.get([
            h.compute_gradients.remote(shard, n / total_rows)
            for h, shard, n in zip(self.replicas, shards, sizes)])

        if self.ring.available:
            # Barriered schedule: each step moves exactly one chunk (or
            # block) per rank, in place, over the pooled blocks.
            for method, step in allreduce_steps(self.algorithm,
                                                self.world_size):
                raylite.get([h.collective_step.remote(method, step)
                             for h in self.replicas])
            out = raylite.get(self.replicas[0].apply_and_publish.remote(
                self._weight_off))
            raylite.get([h.load_weights.remote(0, self._weight_n,
                                               self._weight_off,
                                               out["updates"])
                         for h in self.replicas[1:]])
        else:
            # Pipe fallback: same numerics, fixed rank-order summation.
            grads = [np.asarray(s.pop("flat_grads"), np.float32)
                     for s in stats]
            summed = grads[0].copy()
            for g in grads[1:]:
                summed += g
            out = raylite.get(self.replicas[0].apply_direct.remote(summed))
            self._last_weights = np.asarray(out["weights"], np.float32)
            raylite.get([h.set_flat_weights.remote(self._last_weights,
                                                   out["updates"])
                         for h in self.replicas[1:]])
        self.updates = int(out["updates"])
        return self._format(stats, sizes, total_rows)

    @staticmethod
    def _format(stats: List[Dict], sizes: List[int], total_rows: int):
        losses = [s["losses"] for s in stats]
        agg = tuple(
            float(sum(n / total_rows * l[i]
                      for n, l in zip(sizes, losses)))
            for i in range(len(losses[0])))
        if "td" in stats[0]:
            td = np.concatenate([np.asarray(s["td"]) for s in stats])
            return agg[0], td
        return agg if len(agg) > 1 else agg[0]

    # -- single-learner interface --------------------------------------------
    def get_weights(self, flat: bool = False):
        if not flat:
            return raylite.get(self.replicas[0].get_weights_dict.remote())
        if self.ring.available:
            view = self.ring.view_of(0)
            return np.array(
                view[self._weight_off:self._weight_off + self._weight_n],
                copy=True)
        return np.array(self._last_weights, copy=True)

    def set_weights(self, weights) -> None:
        raylite.get([h.set_flat_weights.remote(weights)
                     for h in self.replicas])
        self._republish()

    def _republish(self) -> None:
        if self.ring.available:
            raylite.get(self.replicas[0].publish_weights.remote(
                self._weight_off))
        else:
            self._last_weights = np.asarray(raylite.get(
                self.replicas[0].get_flat_weights.remote()), np.float32)

    # -- checkpoint/resume ----------------------------------------------------
    def full_state(self) -> Dict:
        """Group checkpoints ARE rank 0's full state — the only replica
        whose optimizer slots advance (ranks > 0 never apply)."""
        try:
            return raylite.get(self.replicas[0].full_state.remote())
        except BaseException:
            if self.supervisor is None:
                raise
            self._recover_all()
            return raylite.get(self.replicas[0].full_state.remote())

    def restore_full_state(self, state: Dict) -> None:
        raylite.get([h.restore_full_state.remote(state)
                     for h in self.replicas])
        self.updates = int(state["updates"])
        self._republish()

    def shutdown(self) -> None:
        """Kill the replicas and return the blocks to the pool."""
        for handle in self.replicas:
            try:
                raylite.kill(handle)
            except BaseException:
                pass
        self.ring.release()
