"""ApexExecutor: distributed prioritized experience replay on raylite.

Reproduces the coordination loop the paper benchmarks in Fig. 6/7:
workers collect n-step-adjusted, pre-prioritized sample batches in
parallel; completed batches are routed round-robin to replay shards; the
learner pulls prioritized batches, trains through
``update_from_external`` and pushes priority corrections back to the
owning shard; worker weights are refreshed every ``weight_sync_steps``
learner updates.

``worker_mode="rlgraph"`` uses batched post-processing (one executor call
per batch); ``worker_mode="rllib_like"`` switches workers to the
incremental multiple-calls-per-batch pattern the paper identifies as
RLlib's bottleneck — this is the E3/E4 comparison axis.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import raylite
from repro.execution.checkpointing import (
    CheckpointManager,
    resolve_checkpoint_spec,
)
from repro.execution.learner_group import LearnerGroup, resolve_learner_spec
from repro.execution.parallel import (
    notify_weight_listeners,
    resolve_parallel_spec,
)
from repro.execution.ray.actors import ApexWorkerActor, ReplayShardActor
from repro.execution.supervision import (
    ReplicaFactory,
    Supervisor,
    resolve_supervision_spec,
)
from repro.utils.errors import RLGraphError


class ApexResult:
    """Outcome of one executor workload."""

    def __init__(self):
        self.env_frames = 0
        self.learner_updates = 0
        self.wall_time = 0.0
        self.mean_worker_return: Optional[float] = None
        self.reward_timeline: List[tuple] = []  # (seconds, mean return)
        self.loss_timeline: List[tuple] = []

    @property
    def env_frames_per_second(self) -> float:
        return self.env_frames / self.wall_time if self.wall_time else 0.0

    def as_dict(self):
        return {
            "env_frames": self.env_frames,
            "env_frames_per_second": self.env_frames_per_second,
            "learner_updates": self.learner_updates,
            "wall_time": self.wall_time,
            "mean_worker_return": self.mean_worker_return,
        }


class ApexExecutor:
    """Centralized-control executor for distributed prioritized replay."""

    def __init__(self, learner_agent, agent_factory: Callable,
                 env_factory: Callable, num_workers: int = 2,
                 envs_per_worker: int = 4, num_replay_shards: int = 4,
                 task_size: int = 200, batch_size: int = 64,
                 replay_capacity: int = 50_000, n_step: int = 3,
                 discount: float = 0.99, learning_starts: int = 500,
                 weight_sync_steps: int = 10,
                 worker_mode: str = "rlgraph",
                 frame_multiplier: int = 1,
                 seed: int = 0, vector_env_spec=None, parallel_spec=None,
                 weight_listeners=None, supervision_spec=None,
                 checkpoint_spec=None, learner_spec=None):
        if worker_mode not in ("rlgraph", "rllib_like"):
            raise RLGraphError(f"Unknown worker_mode {worker_mode!r}")
        self.learner = learner_agent
        # Eval-during-training hook: every weight broadcast also goes to
        # these listeners (e.g. a serving PolicyServer).
        self.weight_listeners = list(weight_listeners or [])
        self.parallel = resolve_parallel_spec(parallel_spec)
        # Data-parallel learner group: replay-sampled batches shard over
        # K replicas (same batch_splitter policy as everywhere else),
        # gradients all-reduce over shared memory, and the group answers
        # update/get_weights/full_state exactly like one learner —
        # priorities and checkpoints flow through unchanged.
        lspec = resolve_learner_spec(learner_spec)
        if lspec is not None:
            self.learner = LearnerGroup(
                learner_agent, agent_factory=agent_factory, spec=lspec,
                parallel_spec=self.parallel,
                supervision_spec=supervision_spec)
        self.batch_size = int(batch_size)
        self.task_size = int(task_size)
        self.learning_starts = int(learning_starts)
        self.weight_sync_steps = int(weight_sync_steps)
        self.envs_per_worker = int(envs_per_worker)
        # Atari frame-skip: env frames per sample step (paper counts
        # frames *including* skips).
        self.frame_multiplier = int(frame_multiplier)

        batched = worker_mode == "rlgraph"
        # parallel_spec selects the raylite backend: thread actors (seed
        # behavior) or process actors whose sample batches travel through
        # shared memory and decode zero-copy on the learner side.
        # Actors are built through ReplicaFactory recipes so the
        # supervisor can restart a crashed one with the exact same
        # configuration.
        worker_factories = [
            ReplicaFactory(self.parallel, ApexWorkerActor,
                           agent_factory, env_factory,
                           num_envs=envs_per_worker, n_step=n_step,
                           discount=discount,
                           worker_side_prioritization=True,
                           batched_postprocessing=batched,
                           worker_index=i,
                           vector_env_spec=vector_env_spec,
                           parallel_spec=self.parallel)
            for i in range(num_workers)
        ]
        self.workers = [factory() for factory in worker_factories]
        shard_factories = [
            ReplicaFactory(self.parallel, ReplayShardActor,
                           capacity=replay_capacity, seed=seed + 17 * i,
                           min_sample_size=batch_size)
            for i in range(num_replay_shards)
        ]
        self.shards = [factory() for factory in shard_factories]
        self._shard_rr = 0

        self.supervision = resolve_supervision_spec(supervision_spec)
        self.supervisor = (Supervisor(self.supervision)
                           if self.supervision.enabled else None)
        if self.supervisor is not None:
            for i, (worker, factory) in enumerate(
                    zip(self.workers, worker_factories)):
                self.supervisor.register(
                    f"apex-worker-{i}", worker, factory,
                    on_restart=self._sync_restarted_worker)
            for i, (shard, factory) in enumerate(
                    zip(self.shards, shard_factories)):
                # A restarted shard rejoins EMPTY: its samples are lost
                # (as in Ray), but inserts/samples flow again and the
                # run survives.
                self.supervisor.register(f"replay-shard-{i}", shard, factory)
        ckpt = resolve_checkpoint_spec(checkpoint_spec)
        self.checkpoints = CheckpointManager(ckpt) if ckpt else None

    # -- fault tolerance ------------------------------------------------
    def _sync_restarted_worker(self, handle) -> None:
        """Re-push the current flat weight vector so a rejoined worker
        resumes at the current version, not its factory-fresh init."""
        handle.set_weights.remote(self.learner.get_weights(flat=True))

    def _recover_worker(self, worker):
        replacement = self.supervisor.ensure_alive(worker)
        if replacement is not worker:
            self.workers = [replacement if w is worker else w
                            for w in self.workers]
        return replacement

    def _recover_shard(self, shard):
        replacement = self.supervisor.ensure_alive(shard)
        if replacement is not shard:
            self.shards = [replacement if s is shard else s
                           for s in self.shards]
        return replacement

    # -- checkpoint/resume ----------------------------------------------
    def _checkpoint_payload(self) -> Dict:
        payload = {"learner": self.learner.full_state(),
                   "shard_rr": self._shard_rr}
        try:
            payload["shards"] = raylite.get(
                [s.state_dict.remote() for s in self.shards], timeout=30.0)
        except Exception:  # a shard mid-restart: weights still save
            payload["shards"] = None
        return payload

    def restore_latest(self) -> bool:
        """Restore the newest checkpoint (learner full state + replay
        shards) and resync all workers to the restored weights.  Returns
        False when the directory has no checkpoint yet."""
        if self.checkpoints is None:
            raise RLGraphError("ApexExecutor has no checkpoint_spec")
        latest = self.checkpoints.load_latest()
        if latest is None:
            return False
        payload, _ = latest
        self.learner.restore_full_state(payload["learner"])
        self._shard_rr = int(payload.get("shard_rr", 0))
        shard_states = payload.get("shards")
        if shard_states:
            raylite.get([s.load_state_dict.remote(state) for s, state
                         in zip(self.shards, shard_states)], timeout=30.0)
        weights = self.learner.get_weights(flat=True)
        for worker in self.workers:
            worker.set_weights.remote(weights)
        return True

    # ------------------------------------------------------------------
    def execute_workload(self, num_samples: Optional[int] = None,
                         duration: Optional[float] = None,
                         updates_enabled: bool = True) -> ApexResult:
        """Run the coordination loop until ``num_samples`` collected or
        ``duration`` seconds elapsed."""
        if num_samples is None and duration is None:
            raise RLGraphError("Provide num_samples or duration")
        result = ApexResult()
        t_start = time.perf_counter()

        # Prime one in-flight sample task per worker.  A worker that died
        # before the run starts is recovered here, not at the first reap.
        in_flight = {}
        for worker in list(self.workers):
            try:
                in_flight[worker.collect.remote(self.task_size)] = worker
            except BaseException:
                if self.supervisor is None:
                    raise
                worker = self._recover_worker(worker)
                in_flight[worker.collect.remote(self.task_size)] = worker
        pending_sample = None
        samples_collected = 0
        updates_since_sync = 0

        def done() -> bool:
            if num_samples is not None and samples_collected >= num_samples:
                return True
            if duration is not None and \
                    time.perf_counter() - t_start >= duration:
                return True
            return False

        while not done():
            # 0. Supervision: restart any crashed actor (bounded backoff,
            # weights re-pushed by the on_restart hook).  A restarted
            # worker's stale in-flight ref fails below and re-arms on the
            # slot's CURRENT handle via ensure_alive — no double restart.
            if self.supervisor is not None:
                self.supervisor.probe()

            # 1. Reap completed worker tasks, re-arm workers immediately.
            ready, _ = raylite.wait(list(in_flight.keys()), num_returns=1,
                                    timeout=0.05)
            for ref in ready:
                worker = in_flight.pop(ref)
                try:
                    batch = raylite.get(ref)
                except BaseException:
                    if self.supervisor is None:
                        raise
                    # Task lost with the dead incarnation; re-arm the
                    # slot's live replacement.
                    worker = self._recover_worker(worker)
                    in_flight[worker.collect.remote(self.task_size)] = worker
                    continue
                n = len(batch["rewards"])
                samples_collected += n
                shard = self.shards[self._shard_rr % len(self.shards)]
                self._shard_rr += 1
                try:
                    shard.insert.remote(batch)
                except BaseException:
                    if self.supervisor is None:
                        raise
                    self._recover_shard(shard).insert.remote(batch)
                try:
                    in_flight[worker.collect.remote(self.task_size)] = worker
                except BaseException:
                    if self.supervisor is None:
                        raise
                    worker = self._recover_worker(worker)
                    in_flight[worker.collect.remote(self.task_size)] = worker

            # 2. Learner step: pull a prioritized batch from a shard.
            if updates_enabled and samples_collected >= self.learning_starts:
                if pending_sample is None:
                    shard = self.shards[self._shard_rr % len(self.shards)]
                    try:
                        pending_sample = (
                            shard.sample.remote(self.batch_size), shard)
                    except BaseException:
                        if self.supervisor is None:
                            raise
                        shard = self._recover_shard(shard)
                        pending_sample = (
                            shard.sample.remote(self.batch_size), shard)
                ref, shard = pending_sample
                if ref.ready():
                    pending_sample = None
                    try:
                        sampled = raylite.get(ref)
                    except BaseException:
                        if self.supervisor is None:
                            raise
                        self._recover_shard(shard)
                        sampled = None
                    if sampled is not None:
                        records, idx, weights = sampled
                        batch = dict(records)
                        batch["importance_weights"] = weights
                        loss, td = self.learner.update(batch)
                        try:
                            shard.update_priorities.remote(
                                idx, np.abs(td) + 1e-6)
                        except BaseException:
                            if self.supervisor is None:
                                raise
                            # Priorities die with the shard's data.
                            self._recover_shard(shard)
                        result.learner_updates += 1
                        updates_since_sync += 1
                        result.loss_timeline.append(
                            (time.perf_counter() - t_start, loss))
                        if self.checkpoints is not None:
                            self.checkpoints.maybe_save(
                                self._checkpoint_payload,
                                result.learner_updates)

            # 3. Broadcast weights — as ONE flat ndarray (the learner's
            # deterministic flat layout matches the workers', same agent
            # class), so the process backend ships exactly one
            # shared-memory block per push and the receiver scatters it
            # with a handful of memcpys instead of a sorted dict walk.
            if updates_since_sync >= self.weight_sync_steps:
                updates_since_sync = 0
                weights = self.learner.get_weights(flat=True)
                for worker in list(self.workers):
                    try:
                        worker.set_weights.remote(weights)
                    except BaseException:
                        if self.supervisor is None:
                            raise
                        # ensure_alive re-pushes via the restart hook.
                        self._recover_worker(worker)
                notify_weight_listeners(self.weight_listeners, weights)

        # Drain: collect final stats from workers.  Supervised runs
        # tolerate a worker dying during the drain (its frames are lost).
        stats = self._collect_stats()
        result.wall_time = time.perf_counter() - t_start
        result.env_frames = sum(s["env_frames"] for s in stats) \
            * self.frame_multiplier
        result.mean_worker_return = _mean_recent_return(stats)
        return result

    def _collect_stats(self) -> List[Dict]:
        """Per-worker stats; in supervised mode a dead worker is skipped
        instead of failing the whole drain."""
        stats = []
        for worker in self.workers:
            try:
                stats.append(raylite.get(worker.get_stats.remote()))
            except BaseException:
                if self.supervisor is None:
                    raise
        return stats

    def reward_snapshot(self) -> Optional[float]:
        """Mean of each worker's recent episode returns (the paper's
        "mean worker rewards" y-axis in Figs. 7b/8)."""
        return _mean_recent_return(self._collect_stats())


def _mean_recent_return(stats, last_n: int = 20) -> Optional[float]:
    """Average the per-worker tails so one fast-looping worker cannot
    drown out the others' recent episodes."""
    per_worker = [s["episode_returns"][-last_n:] for s in stats
                  if s["episode_returns"]]
    if not per_worker:
        return None
    return float(np.mean([np.mean(tail) for tail in per_worker]))


