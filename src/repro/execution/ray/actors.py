"""raylite actor classes for the Ape-X executor.

* :class:`ApexWorkerActor` — one sample-collection worker: local agent
  copy, a vector of environments, n-step post-processing and worker-side
  prioritization (paper §5.1, "vectorized environment worker for sample
  collection, including all heuristics described in the Ape-X paper").
* :class:`ReplayShardActor` — one prioritized replay shard (the paper
  runs 4 "instances of replay memories to feed the learner").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.components.memories import PrioritizedReplayBuffer
from repro.execution.worker import SingleThreadedWorker, build_vector_env


def apex_worker_epsilon(worker_index: int, num_workers: int,
                        base: float = 0.4, alpha: float = 7.0) -> float:
    """Ape-X per-worker constant epsilon: eps_i = base^(1 + i/(N-1)*alpha)
    (Horgan et al. 2018, eq. in §4). Workers keep exploring at fixed,
    staggered rates forever instead of sharing one decaying schedule."""
    if num_workers <= 1:
        return base
    return base ** (1.0 + worker_index / (num_workers - 1) * alpha)


class ApexWorkerActor:
    """Builds a local agent + vectorized worker inside the actor thread.

    ``agent_factory`` may accept a ``worker_index`` kwarg to configure
    per-worker exploration (Ape-X constant epsilons).  ``vector_env_spec``
    selects the vector-environment engine (``None`` keeps the sequential
    paper baseline); ``parallel_spec`` supplies engine defaults (e.g.
    ``env_backend="subproc"`` steps the vector in worker processes)."""

    def __init__(self, agent_factory: Callable, env_factory: Callable,
                 num_envs: int = 4, n_step: int = 3, discount: float = 0.99,
                 worker_side_prioritization: bool = True,
                 batched_postprocessing: bool = True,
                 worker_index: int = 0, vector_env_spec=None,
                 parallel_spec=None):
        try:
            self.agent = agent_factory(worker_index=worker_index)
        except TypeError:
            self.agent = agent_factory()
        self.vector_env = build_vector_env(
            env_factory, num_envs, worker_index * 1000,
            vector_env_spec=vector_env_spec, parallel_spec=parallel_spec)
        self.worker = SingleThreadedWorker(
            self.agent, self.vector_env, n_step=n_step, discount=discount,
            worker_side_prioritization=worker_side_prioritization,
            batched_postprocessing=batched_postprocessing)
        self.worker_index = worker_index

    def collect(self, num_samples: int) -> Dict[str, np.ndarray]:
        return self.worker.collect_samples(num_samples)

    def set_weights(self, weights) -> int:
        """Apply a learner weight push: a flat vector (the executors'
        single-shm-block path) or a per-variable dict."""
        self.agent.set_weights(weights)
        return self.worker_index

    def get_stats(self) -> Dict:
        stats = self.worker.stats
        return {
            "env_frames": stats.env_frames,
            "sample_steps": stats.sample_steps,
            "wall_time": stats.wall_time,
            "mean_return": stats.mean_return(),
            "episode_returns": list(stats.episode_returns),
        }


class ReplayShardActor:
    """One prioritized replay shard."""

    def __init__(self, capacity: int = 50_000, alpha: float = 0.6,
                 beta: float = 0.4, seed: Optional[int] = None,
                 min_sample_size: int = 1):
        self.buffer = PrioritizedReplayBuffer(capacity, alpha=alpha,
                                              beta=beta, seed=seed)
        self.min_sample_size = int(min_sample_size)
        self.inserted = 0

    def insert(self, batch: Dict[str, np.ndarray]) -> int:
        priorities = batch.pop("priorities", None)
        self.buffer.insert(batch, priorities=priorities)
        self.inserted += len(batch["rewards"])
        return self.inserted

    def sample(self, batch_size: int):
        """Returns (records, indices, weights) or None if underfilled."""
        if len(self.buffer) < max(batch_size, self.min_sample_size):
            return None
        records, idx, weights = self.buffer.sample(batch_size)
        return records, idx, weights

    def update_priorities(self, indices, priorities) -> int:
        self.buffer.update_priorities(indices, priorities)
        return len(indices)

    def size(self) -> int:
        return len(self.buffer)

    def state_dict(self) -> Dict:
        """Shard checkpoint: buffer contents + cursors + trees + RNG."""
        state = self.buffer.state_dict()
        state["inserted"] = self.inserted
        return state

    def load_state_dict(self, state: Dict) -> int:
        state = dict(state)
        self.inserted = int(state.pop("inserted", 0))
        self.buffer.load_state_dict(state)
        return self.inserted
