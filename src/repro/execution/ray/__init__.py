"""Distributed executors on the raylite actor engine (paper §4.1:
"RLgraph can be executed in distributed mode ... we also built a Ray
executor which can execute arbitrary RLgraph implementations on Ray's
centralized execution model")."""

from repro.execution.ray.actors import ApexWorkerActor, ReplayShardActor
from repro.execution.ray.apex_executor import ApexExecutor, ApexResult

__all__ = ["ApexWorkerActor", "ReplayShardActor", "ApexExecutor",
           "ApexResult"]
