"""Actor supervision: liveness probes + bounded-backoff restarts.

raylite can *kill* workers but (before this module) nothing restarted
them — a crashed Ape-X/IMPALA actor or serving replica simply
disappeared and the run died with a descriptive error.  The
:class:`Supervisor` closes that gap:

* every supervised slot pairs a live actor handle with a **picklable
  replica factory** (:class:`ReplicaFactory`) — the exact construction
  recipe (class + args + raylite backend) that built the original, so a
  restart is a fresh actor with the same configuration;
* liveness is the raylite mailbox signal (``handle.is_alive()``, thread
  and process backends alike) — a SIGKILLed process actor flips it
  immediately, before its reader thread even sees the pipe EOF;
* restarts back off exponentially (``base_delay * factor**attempt``,
  capped at ``max_delay``), **jitterless** so a seeded clock reproduces
  the exact restart timeline, and are bounded: after ``max_restarts``
  failed resurrections of one slot the supervisor gives up with a typed
  :class:`SupervisionError` listing the full restart history;
* each restart runs the slot's ``on_restart`` hook — executors use it to
  re-push the current flat weight vector so a rejoined actor resumes at
  the current version instead of its factory-fresh init.

The supervisor never polls on its own thread; executors call
:meth:`Supervisor.probe` from their coordination loops (or a dedicated
monitor thread, as the serving worker pool does) so recovery happens on
the loop that owns the actors.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from repro.utils.errors import RLGraphError


class SupervisionError(RLGraphError):
    """A supervised actor exhausted its restart budget.

    Carries the slot ``name`` and the full restart ``history`` (a list
    of :class:`RestartEvent`) so post-mortems see every resurrection
    attempt, not just the last failure.
    """

    def __init__(self, name: str, history: List["RestartEvent"],
                 reason: str = "restart budget exhausted"):
        self.actor_name = name
        self.history = list(history)
        lines = "\n".join(f"  {event}" for event in self.history) or "  (none)"
        super().__init__(
            f"Supervised actor {name!r}: {reason} "
            f"after {len(self.history)} restart(s); history:\n{lines}")


class RestartEvent:
    """One restart of one supervised slot (for history/assertions)."""

    __slots__ = ("name", "attempt", "delay", "at", "reason")

    def __init__(self, name: str, attempt: int, delay: float, at: float,
                 reason: str = "dead"):
        self.name = name
        self.attempt = attempt
        self.delay = delay
        self.at = at
        self.reason = reason

    def __repr__(self):
        return (f"RestartEvent({self.name!r}, attempt={self.attempt}, "
                f"delay={self.delay:.3f}s, at={self.at:.3f}, "
                f"reason={self.reason!r})")


class BackoffPolicy:
    """Bounded, jitterless exponential backoff.

    ``delay(attempt) = min(base_delay * factor**attempt, max_delay)``
    for ``attempt`` in ``[0, max_restarts)``.  Deterministic by design:
    chaos tests and seeded-clock property tests must reproduce the exact
    restart timeline, so there is no jitter knob.
    """

    def __init__(self, base_delay: float = 0.1, factor: float = 2.0,
                 max_delay: float = 5.0, max_restarts: int = 5):
        if base_delay < 0:
            raise RLGraphError("base_delay must be >= 0")
        if factor < 1.0:
            raise RLGraphError("factor must be >= 1")
        if max_delay < base_delay:
            raise RLGraphError("max_delay must be >= base_delay")
        if max_restarts < 0:
            raise RLGraphError("max_restarts must be >= 0")
        self.base_delay = float(base_delay)
        self.factor = float(factor)
        self.max_delay = float(max_delay)
        self.max_restarts = int(max_restarts)

    def delay(self, attempt: int) -> float:
        """Backoff before restart number ``attempt`` (0-based)."""
        if attempt < 0:
            raise RLGraphError("attempt must be >= 0")
        return min(self.base_delay * self.factor ** attempt, self.max_delay)

    def delays(self) -> List[float]:
        """The whole (bounded) delay schedule."""
        return [self.delay(i) for i in range(self.max_restarts)]

    def __repr__(self):
        return (f"BackoffPolicy(base_delay={self.base_delay}, "
                f"factor={self.factor}, max_delay={self.max_delay}, "
                f"max_restarts={self.max_restarts})")


class SupervisionSpec:
    """Resolved supervision configuration (one per executor)."""

    def __init__(self, enabled: bool = True,
                 backoff: Optional[BackoffPolicy] = None,
                 probe_interval: float = 0.05,
                 reset_after: float = 60.0):
        self.enabled = bool(enabled)
        self.backoff = backoff or BackoffPolicy()
        if probe_interval <= 0:
            raise RLGraphError("probe_interval must be > 0")
        if reset_after < 0:
            raise RLGraphError("reset_after must be >= 0")
        self.probe_interval = float(probe_interval)
        # A slot healthy this long earns its attempt counter back —
        # transient crash storms stay bounded, but one crash per hour
        # does not eventually exhaust the budget of a long run.
        self.reset_after = float(reset_after)

    def __repr__(self):
        return (f"SupervisionSpec(enabled={self.enabled}, "
                f"backoff={self.backoff!r}, "
                f"probe_interval={self.probe_interval}, "
                f"reset_after={self.reset_after})")


_SPEC_KEYS = {"enabled", "probe_interval", "reset_after", "base_delay",
              "factor", "max_delay", "max_restarts"}


def resolve_supervision_spec(spec) -> SupervisionSpec:
    """Resolve an executor's ``supervision_spec`` value.

    ``None``/``False`` — disabled (the seed behavior: a crashed actor
    raises a descriptive error and the run dies).  ``True``/``"on"`` —
    defaults.  A dict may set any of ``enabled``, ``probe_interval``,
    ``reset_after`` plus the :class:`BackoffPolicy` knobs
    (``base_delay``, ``factor``, ``max_delay``, ``max_restarts``).
    A :class:`SupervisionSpec` passes through.
    """
    if isinstance(spec, SupervisionSpec):
        return spec
    if spec is None or spec is False:
        return SupervisionSpec(enabled=False)
    if spec is True or spec == "on":
        return SupervisionSpec(enabled=True)
    if isinstance(spec, dict):
        unknown = set(spec) - _SPEC_KEYS
        if unknown:
            raise RLGraphError(
                f"Unknown supervision_spec keys {sorted(unknown)}; "
                f"expected a subset of {sorted(_SPEC_KEYS)}")
        backoff = BackoffPolicy(
            base_delay=spec.get("base_delay", 0.1),
            factor=spec.get("factor", 2.0),
            max_delay=spec.get("max_delay", 5.0),
            max_restarts=spec.get("max_restarts", 5))
        return SupervisionSpec(
            enabled=spec.get("enabled", True), backoff=backoff,
            probe_interval=spec.get("probe_interval", 0.05),
            reset_after=spec.get("reset_after", 60.0))
    raise RLGraphError(
        f"supervision_spec must be None, bool, 'on', dict or "
        f"SupervisionSpec, got {type(spec).__name__}")


class ReplicaFactory:
    """Picklable recipe for (re)creating one actor replica.

    Captures the actor class, its construction arguments and the
    :class:`~repro.execution.parallel.ParallelSpec` backend selection —
    everything a restart needs.  Picklability matters because process
    actors ship their construction arguments to a fresh worker process
    on every (re)start; a closure over live handles would not survive
    the trip.
    """

    def __init__(self, parallel, cls: type, *args, **kwargs):
        self.parallel = parallel
        self.cls = cls
        self.args = args
        self.kwargs = kwargs

    def __call__(self):
        return self.parallel.actor_factory(self.cls).remote(
            *self.args, **self.kwargs)

    def __repr__(self):
        return (f"ReplicaFactory({self.cls.__name__}, "
                f"backend={self.parallel.backend!r})")


class _Slot:
    """One supervised actor slot: current handle + restart bookkeeping."""

    __slots__ = ("name", "handle", "factory", "on_restart", "attempts",
                 "last_restart_at", "history")

    def __init__(self, name, handle, factory, on_restart):
        self.name = name
        self.handle = handle
        self.factory = factory
        self.on_restart = on_restart
        self.attempts = 0
        self.last_restart_at: Optional[float] = None
        self.history: List[RestartEvent] = []


class Supervisor:
    """Restarts crashed actors with bounded exponential backoff.

    Thread-safe: executor loops, raylite reader-thread death callbacks
    and serving monitor threads may all drive recovery concurrently; a
    per-supervisor lock serializes restarts so one death produces one
    replacement.  ``clock``/``sleep`` are injectable for deterministic
    property tests.
    """

    def __init__(self, spec: Optional[SupervisionSpec] = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep):
        self.spec = spec or SupervisionSpec()
        self._clock = clock
        self._sleep = sleep
        self._slots: Dict[str, _Slot] = {}
        # Every handle a slot has EVER held maps back to its slot, so a
        # caller recovering from a stale handle (a failed ObjectRef of
        # the pre-restart incarnation) still lands on the right slot.
        self._slot_by_handle: Dict[int, str] = {}
        # Restart events of slots since unregistered (autoscaler
        # scale-downs): total_restarts must not forget them.
        self._retired_history: List[RestartEvent] = []
        self._lock = threading.RLock()

    # -- registration -------------------------------------------------------
    def register(self, name: str, handle, factory: Callable[[], object],
                 on_restart: Optional[Callable[[object], None]] = None
                 ) -> None:
        """Supervise ``handle``; ``factory()`` builds its replacement.

        ``on_restart(new_handle)`` runs after every successful restart —
        executors re-push the current flat weight vector here so the
        rejoined actor resumes at the current version.
        """
        with self._lock:
            if name in self._slots:
                raise RLGraphError(f"Slot {name!r} already supervised")
            slot = _Slot(name, handle, factory, on_restart)
            self._slots[name] = slot
            self._slot_by_handle[id(handle)] = name

    def unregister(self, name: str):
        """Stop supervising a slot; returns its current handle.

        The serving autoscaler scales a pool *down* by retiring one
        replica: the slot must leave supervision first, or the next
        probe would resurrect the deliberately-removed actor.  The
        slot's restart history is retained (``total_restarts`` never
        forgets), and killing/draining the returned handle stays the
        caller's job.
        """
        with self._lock:
            slot = self._slots.pop(name, None)
            if slot is None:
                raise RLGraphError(f"Slot {name!r} is not supervised")
            self._retired_history.extend(slot.history)
            self._slot_by_handle = {
                key: value for key, value in self._slot_by_handle.items()
                if value != name}
            return slot.handle

    def name_of(self, handle) -> Optional[str]:
        """The slot name a handle belongs to (any incarnation), or
        None for unsupervised handles."""
        with self._lock:
            return self._slot_by_handle.get(id(handle))

    def names(self) -> List[str]:
        with self._lock:
            return list(self._slots)

    def handle(self, name: str):
        """The slot's *current* handle (post-restart incarnations move)."""
        with self._lock:
            return self._slots[name].handle

    def handles(self) -> List[object]:
        with self._lock:
            return [slot.handle for slot in self._slots.values()]

    @property
    def restart_history(self) -> List[RestartEvent]:
        """All restarts across all slots (including since-unregistered
        ones), in restart order."""
        with self._lock:
            events = [e for slot in self._slots.values()
                      for e in slot.history] + list(self._retired_history)
        return sorted(events, key=lambda e: e.at)

    @property
    def total_restarts(self) -> int:
        return len(self.restart_history)

    # -- recovery -----------------------------------------------------------
    def ensure_alive(self, handle):
        """Return a live handle for the slot ``handle`` occupies.

        If the slot's current incarnation is alive (including a
        replacement another thread already made), return it without
        restarting anything; otherwise restart with backoff.  Raises
        :class:`SupervisionError` once the slot's budget is exhausted
        and :class:`KeyError` for unsupervised handles.
        """
        with self._lock:
            name = self._slot_by_handle.get(id(handle))
            if name is None:
                raise KeyError(
                    f"Handle {handle!r} is not supervised")
            return self._ensure_slot(self._slots[name])

    def probe(self) -> List[str]:
        """Liveness-probe every slot; restart the dead ones.

        Returns the names of slots restarted by THIS call.  Cheap when
        everyone is alive (one ``is_alive()`` per slot), so executor
        loops call it every iteration.
        """
        restarted = []
        with self._lock:
            for slot in list(self._slots.values()):
                before = slot.handle
                self._ensure_slot(slot)
                if slot.handle is not before:
                    restarted.append(slot.name)
        return restarted

    def _ensure_slot(self, slot: _Slot):
        if slot.handle.is_alive():
            # Healthy long enough? The slot earns its budget back.
            if (slot.attempts and slot.last_restart_at is not None
                    and self._clock() - slot.last_restart_at
                    >= self.spec.reset_after):
                slot.attempts = 0
            return slot.handle
        return self._restart(slot)

    def _restart(self, slot: _Slot):
        backoff = self.spec.backoff
        while True:
            if slot.attempts >= backoff.max_restarts:
                raise SupervisionError(slot.name, slot.history)
            attempt = slot.attempts
            delay = backoff.delay(attempt)
            slot.attempts += 1
            if delay:
                self._sleep(delay)
            self._reap(slot.handle)
            now = self._clock()
            event = RestartEvent(slot.name, attempt, delay, now)
            try:
                new_handle = slot.factory()
            except Exception as exc:
                event.reason = f"factory failed: {exc!r}"
                slot.history.append(event)
                continue  # next attempt (or budget exhaustion above)
            slot.history.append(event)
            if not new_handle.is_alive():
                # Constructed but already dead (e.g. crash-on-init):
                # burns an attempt like any other failed resurrection.
                event.reason = "replacement dead on arrival"
                self._reap(new_handle)
                continue
            slot.handle = new_handle
            slot.last_restart_at = now
            self._slot_by_handle[id(new_handle)] = slot.name
            if slot.on_restart is not None:
                try:
                    slot.on_restart(new_handle)
                except Exception as exc:
                    # A rejoin hook failing (e.g. the fresh actor died
                    # again mid-push) is the next death, not a crash of
                    # the supervisor: retry within the same budget.
                    event.reason = f"on_restart failed: {exc!r}"
                    continue
            return new_handle

    @staticmethod
    def _reap(handle) -> None:
        """Clean up the dead incarnation (fail its pending refs, drop it
        from the raylite registry).  Best-effort — it is already dead."""
        from repro import raylite
        try:
            raylite.kill(handle)
        except Exception:
            pass
