"""Periodic checkpoints with atomic save and exact resume.

Checkpointing is the second half of the fault-tolerance story (the
:mod:`~repro.execution.supervision` restart path is the first): a
supervisor recovers from *actor* deaths inside a run, a checkpoint
recovers the *run* itself across driver restarts.

The state captured is the complete mutable footprint of training:

* ``Agent.full_state()`` — every variable including optimizer slot
  slabs, target networks, in-graph replay buffers and index/size
  cursors, plus un-flushed observe buffers and backend RNG node states;
* ``Environment.get_state()`` — physics + episode accounting + env RNG;
* executor counters and (for Ape-X) the replay-shard
  ``state_dict()``s.

Because every RNG in the stack is restored bit-for-bit, a run resumed
from a checkpoint continues **bitwise-identically** to one that was
never interrupted — the resume-equivalence property
``tests/test_checkpoint_roundtrip.py`` asserts.

Writes are atomic (temp file + ``os.replace``) so a crash mid-save
never corrupts the latest good checkpoint, and old checkpoints are
pruned to a bounded ``keep`` count.
"""

from __future__ import annotations

import os
import pickle
import re
import tempfile
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.utils.errors import RLGraphError

_CKPT_RE = re.compile(r"^ckpt-(\d+)\.pkl$")


class CheckpointSpec:
    """Resolved checkpoint configuration.

    ``directory`` — where checkpoints live; ``interval`` — steps between
    periodic saves (:meth:`CheckpointManager.maybe_save`); ``keep`` —
    how many most-recent checkpoints survive pruning.
    """

    def __init__(self, directory: str, interval: int = 50, keep: int = 3):
        if not directory:
            raise RLGraphError("CheckpointSpec needs a directory")
        if interval <= 0:
            raise RLGraphError("interval must be > 0")
        if keep <= 0:
            raise RLGraphError("keep must be > 0")
        self.directory = str(directory)
        self.interval = int(interval)
        self.keep = int(keep)

    def __repr__(self):
        return (f"CheckpointSpec({self.directory!r}, "
                f"interval={self.interval}, keep={self.keep})")


def resolve_checkpoint_spec(spec) -> Optional[CheckpointSpec]:
    """``None``/``False`` — disabled (returns None).  A string is a
    directory with default interval/keep; a dict passes its keys to
    :class:`CheckpointSpec`; a spec instance passes through."""
    if spec is None or spec is False:
        return None
    if isinstance(spec, CheckpointSpec):
        return spec
    if isinstance(spec, str):
        return CheckpointSpec(spec)
    if isinstance(spec, dict):
        unknown = set(spec) - {"directory", "interval", "keep"}
        if unknown:
            raise RLGraphError(
                f"Unknown checkpoint_spec keys {sorted(unknown)}")
        return CheckpointSpec(**spec)
    raise RLGraphError(
        f"checkpoint_spec must be None, str, dict or CheckpointSpec, "
        f"got {type(spec).__name__}")


class CheckpointManager:
    """Atomic pickle checkpoints in one directory, pruned to ``keep``."""

    def __init__(self, spec):
        resolved = resolve_checkpoint_spec(spec)
        if resolved is None:
            raise RLGraphError("CheckpointManager needs an enabled spec")
        self.spec = resolved
        os.makedirs(self.spec.directory, exist_ok=True)
        self._last_saved_step: Optional[int] = None

    # -- save ---------------------------------------------------------------
    def save(self, payload: Dict[str, Any], step: int) -> str:
        """Write ``ckpt-<step>.pkl`` atomically; prune beyond ``keep``."""
        path = os.path.join(self.spec.directory, f"ckpt-{int(step):012d}.pkl")
        fd, tmp_path = tempfile.mkstemp(
            dir=self.spec.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump({"step": int(step), "payload": payload}, f,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)  # atomic: never a torn checkpoint
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._last_saved_step = int(step)
        self._prune()
        return path

    def maybe_save(self, payload_fn: Callable[[], Dict[str, Any]],
                   step: int) -> Optional[str]:
        """Save if ``step`` crossed the interval since the last save.
        ``payload_fn`` is only called when a save actually happens —
        capturing full state is not free."""
        if (self._last_saved_step is not None
                and step - self._last_saved_step < self.spec.interval):
            return None
        if self._last_saved_step is None and step < self.spec.interval:
            return None
        return self.save(payload_fn(), step)

    # -- load ---------------------------------------------------------------
    def steps(self) -> List[int]:
        """Steps of all retained checkpoints, ascending."""
        found = []
        for entry in os.listdir(self.spec.directory):
            match = _CKPT_RE.match(entry)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def load_latest(self) -> Optional[Tuple[Dict[str, Any], int]]:
        """(payload, step) of the newest checkpoint, or None if empty."""
        steps = self.steps()
        if not steps:
            return None
        return self.load(steps[-1])

    def load(self, step: int) -> Tuple[Dict[str, Any], int]:
        path = os.path.join(self.spec.directory, f"ckpt-{int(step):012d}.pkl")
        with open(path, "rb") as f:
            record = pickle.load(f)
        self._last_saved_step = record["step"]
        return record["payload"], record["step"]

    def _prune(self) -> None:
        steps = self.steps()
        for step in steps[:-self.spec.keep]:
            try:
                os.unlink(os.path.join(
                    self.spec.directory, f"ckpt-{step:012d}.pkl"))
            except OSError:  # pragma: no cover - already gone
                pass


class ResumableTrainer:
    """Single-process act/observe/update loop with exact resume.

    The simplest consumer of the checkpoint layer (the ``--resume``
    path of ``scripts/train_policy.py``) and the subject of the
    resume-equivalence test: the trainer's state is the agent's full
    state + the environment's state + the in-flight observation and
    step counter, so ``run(N); [checkpoint; new trainer; resume]``
    continues bitwise-identically to ``run(2N)`` uninterrupted.
    """

    def __init__(self, agent, env, learning_starts: int = 64,
                 update_interval: int = 1, checkpoint=None):
        self.agent = agent
        self.env = env
        self.learning_starts = int(learning_starts)
        self.update_interval = int(update_interval)
        spec = resolve_checkpoint_spec(checkpoint)
        self.manager = CheckpointManager(spec) if spec else None
        self.step = 0
        self._obs = None  # current observation carries across checkpoints

    # -- state --------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        return {
            "step": self.step,
            "obs": None if self._obs is None else self._obs.copy(),
            "agent": self.agent.full_state(),
            "env": self.env.get_state(),
        }

    def restore(self, payload: Dict[str, Any]) -> None:
        self.step = int(payload["step"])
        self._obs = payload["obs"]
        self.agent.restore_full_state(payload["agent"])
        self.env.set_state(payload["env"])

    def checkpoint(self) -> str:
        if self.manager is None:
            raise RLGraphError("Trainer has no checkpoint directory")
        return self.manager.save(self.state(), self.step)

    def resume(self) -> bool:
        """Restore the newest checkpoint; False if there is none yet."""
        if self.manager is None:
            raise RLGraphError("Trainer has no checkpoint directory")
        latest = self.manager.load_latest()
        if latest is None:
            return False
        self.restore(latest[0])
        return True

    # -- loop ---------------------------------------------------------------
    def run(self, num_steps: int) -> Dict[str, Any]:
        """Train ``num_steps`` environment steps; periodic checkpoints
        when a manager is configured."""
        losses = []
        if self._obs is None:
            self._obs = self.env.reset()
        for _ in range(int(num_steps)):
            out = self.agent.get_actions(self._obs, explore=True)
            action = out[0] if isinstance(out, tuple) else out
            next_obs, reward, terminal, _ = self.env.step(action)
            self.agent.observe(self._obs, action, reward, terminal, next_obs)
            self._obs = self.env.reset() if terminal else next_obs
            self.step += 1
            if (self.step > self.learning_starts
                    and self.step % self.update_interval == 0):
                result = self.agent.update()
                losses.append(float(result[0]) if isinstance(result, tuple)
                              else float(result))
            if self.manager is not None:
                self.manager.maybe_save(self.state, self.step)
        return {
            "step": self.step,
            "updates": self.agent.updates,
            "timesteps": self.agent.timesteps,
            "mean_loss": sum(losses) / len(losses) if losses else None,
        }
