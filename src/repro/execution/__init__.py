"""Execution layer: workers, device strategies, distributed executors."""

from repro.execution.parallel import (
    ParallelSpec,
    notify_weight_listeners,
    resolve_parallel_spec,
)
from repro.execution.worker import (
    NStepAccumulator,
    SingleThreadedWorker,
    WorkerStats,
    build_vector_env,
)
from repro.execution.sync_batch_executor import A2CRolloutActor, SyncBatchExecutor
from repro.execution.supervision import (
    BackoffPolicy,
    ReplicaFactory,
    RestartEvent,
    SupervisionError,
    SupervisionSpec,
    Supervisor,
    resolve_supervision_spec,
)
from repro.execution.checkpointing import (
    CheckpointManager,
    CheckpointSpec,
    ResumableTrainer,
    resolve_checkpoint_spec,
)
from repro.execution.learner_group import (
    LearnerGroup,
    LearnerReplicaActor,
    LearnerSpec,
    resolve_learner_spec,
)

__all__ = ["NStepAccumulator", "SingleThreadedWorker", "WorkerStats",
           "A2CRolloutActor", "SyncBatchExecutor",
           "ParallelSpec", "resolve_parallel_spec", "build_vector_env",
           "notify_weight_listeners",
           "BackoffPolicy", "ReplicaFactory", "RestartEvent",
           "SupervisionError", "SupervisionSpec", "Supervisor",
           "resolve_supervision_spec",
           "CheckpointManager", "CheckpointSpec", "ResumableTrainer",
           "resolve_checkpoint_spec",
           "LearnerGroup", "LearnerReplicaActor", "LearnerSpec",
           "resolve_learner_spec"]
