"""Execution layer: workers, device strategies, distributed executors."""

from repro.execution.worker import NStepAccumulator, SingleThreadedWorker, WorkerStats
from repro.execution.sync_batch_executor import A2CRolloutActor, SyncBatchExecutor

__all__ = ["NStepAccumulator", "SingleThreadedWorker", "WorkerStats",
           "A2CRolloutActor", "SyncBatchExecutor"]
