"""Vectorized sample-collection worker (the paper's RayWorker, §5.1).

One worker drives a vector of environments with *batched* inference (one
executor call per step for the whole vector) and — critically for the
Fig. 6/7a results — *batched* post-processing: n-step adjustment and
worker-side prioritization run once per collected batch as vectorized
NumPy, instead of the per-sample/multiple-session-call pattern the
RLlib-like baseline uses. ``batched_postprocessing=False`` switches this
worker to the incremental mode for the ablation.
"""

from __future__ import annotations

import functools
import time
from collections import deque
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.environments.vector_env import VectorEnv, vector_env_from_spec
from repro.utils.errors import RLGraphError


class WorkerStats:
    """Accumulated throughput / episode statistics."""

    def __init__(self):
        self.env_frames = 0
        self.sample_steps = 0
        self.wall_time = 0.0
        self.episode_returns: List[float] = []

    @property
    def frames_per_second(self) -> float:
        return self.env_frames / self.wall_time if self.wall_time else 0.0

    def mean_return(self, last_n: int = 100) -> Optional[float]:
        if not self.episode_returns:
            return None
        return float(np.mean(self.episode_returns[-last_n:]))


class NStepAccumulator:
    """Streaming n-step transition builder for one environment slot.

    Emits (s_t, a_t, sum_k gamma^k r_{t+k}, terminal_within_window,
    s_{t+n}) once the window fills; flushes shortened windows on terminal.
    """

    def __init__(self, n_step: int, discount: float):
        if n_step < 1:
            raise RLGraphError("n_step must be >= 1")
        self.n_step = int(n_step)
        self.discount = float(discount)
        self._window: deque = deque()

    def push(self, state, action, reward, terminal, next_state) -> List[tuple]:
        """Add one raw transition; returns ready n-step samples."""
        self._window.append((state, action, float(reward), bool(terminal),
                             next_state))
        out = []
        if terminal:
            while self._window:
                out.append(self._fold())
        elif len(self._window) == self.n_step:
            out.append(self._fold())
        return out

    def _fold(self) -> tuple:
        state, action = self._window[0][0], self._window[0][1]
        reward = 0.0
        terminal = False
        next_state = self._window[-1][4]
        for k, (_, _, r, t, ns) in enumerate(self._window):
            reward += (self.discount ** k) * r
            if t:
                terminal = True
                next_state = ns
                break
        self._window.popleft()
        return state, action, reward, terminal, next_state


def batched_n_step(states, actions, rewards, terminals, next_states,
                   n_step: int, discount: float):
    """Vectorized n-step over a (T, num_envs, ...) rollout block.

    Samples whose window crosses the block end are truncated to the
    available horizon (bootstrapping handled by the target network).
    Returns flat arrays over (T * num_envs).
    """
    t_steps, num_envs = rewards.shape
    n_rewards = rewards.astype(np.float32).copy()
    n_terminals = terminals.copy()
    n_next = np.array(next_states, copy=True)
    # Extend each window one offset at a time, vectorized over (t, env):
    # at iteration k, n_terminals marks windows that already hit a
    # terminal within offsets [0, k-1] and must not extend further.
    for k in range(1, n_step):
        can_extend = ~n_terminals
        can_extend[t_steps - k:] = False  # window would cross block end
        idx_t, idx_e = np.nonzero(can_extend)
        if idx_t.size == 0:
            break
        n_rewards[idx_t, idx_e] += (discount ** k) * rewards[idx_t + k, idx_e]
        n_next[idx_t, idx_e] = next_states[idx_t + k, idx_e]
        n_terminals[idx_t, idx_e] |= terminals[idx_t + k, idx_e]
    flat = lambda arr: arr.reshape((-1,) + arr.shape[2:])
    return (flat(states), flat(actions), flat(n_rewards), flat(n_terminals),
            flat(n_next))


def _spec_engine_name(spec) -> Optional[str]:
    if isinstance(spec, str):
        return spec
    if isinstance(spec, dict):
        return spec.get("type")
    return None


def build_vector_env(env_factory: Callable, num_envs: int, base_seed: int,
                     vector_env_spec=None, parallel_spec=None) -> VectorEnv:
    """Build an actor's env vector honoring both spec layers.

    ``env_factory(seed)`` constructs one environment.  ``parallel_spec``
    (see :mod:`repro.execution.parallel`) supplies the engine *default*
    via ``env_backend`` — an explicit ``vector_env_spec`` always wins.
    For process engines (``"subproc"``) the factory calls are deferred
    as ``env_fns`` so environments are constructed **inside** the worker
    processes; thread engines build them eagerly on this thread, which
    keeps per-engine seeding byte-identical.
    """
    from repro.execution.parallel import resolve_parallel_spec
    spec = resolve_parallel_spec(parallel_spec).vector_env_spec_default(
        vector_env_spec)
    seeds = [base_seed + i for i in range(num_envs)]
    if _spec_engine_name(spec) == "subproc":
        env_fns = [functools.partial(env_factory, seed) for seed in seeds]
        return vector_env_from_spec(spec, env_fns=env_fns)
    return vector_env_from_spec(spec, envs=[env_factory(s) for s in seeds])


def snapshot_fn(vector_env):
    """Identity unless ``vector_env`` hands out live zero-copy buffers.

    With ``copy_output=False`` engines, identity-preprocessing agents
    return the engine's shared states buffer as "preprocessed"; any
    consumer that retains those arrays across steps must snapshot them
    or the next ``step_async`` rewrites the whole rollout in place.
    """
    if getattr(vector_env, "copy_output", True):
        return lambda arr: arr
    return lambda arr: np.array(arr, copy=True)


class SingleThreadedWorker:
    """Acts on a vector of environments and post-processes samples.

    Args:
        agent: a built agent with ``get_actions`` returning
            (actions, preprocessed [, ...]) — DQN-family signature.
        vector_env: any :class:`~repro.environments.vector_env.VectorEnv`
            engine.  The batched collection path uses the engine's
            ``step_async``/``step_wait`` split, so rollout bookkeeping
            overlaps environment stepping on the threaded/async engines.
        n_step: n-step reward adjustment (Ape-X uses 3).
        worker_side_prioritization: compute initial priorities (|td|)
            before shipping samples (Ape-X heuristic).
        batched_postprocessing: vectorized batch-level post-processing
            (RLgraph mode) vs per-step per-env incremental mode
            (the RLlib-like pattern; ablation switch).
    """

    def __init__(self, agent, vector_env: VectorEnv,
                 n_step: int = 1, discount: float = 0.99,
                 worker_side_prioritization: bool = False,
                 batched_postprocessing: bool = True):
        self.agent = agent
        self.vector_env = vector_env
        self.n_step = int(n_step)
        self.discount = float(discount)
        self.worker_side_prioritization = worker_side_prioritization
        self.batched_postprocessing = batched_postprocessing
        self.stats = WorkerStats()
        self._snap = snapshot_fn(vector_env)
        self._states = vector_env.reset_all()
        self._accumulators = [NStepAccumulator(n_step, discount)
                              for _ in range(vector_env.num_envs)]

    # ------------------------------------------------------------------
    def collect_samples(self, num_samples: int) -> Dict[str, np.ndarray]:
        """Collect ~num_samples post-processed transitions.

        Returns a batch dict (states/actions/rewards/terminals/
        next_states [+ priorities]).
        """
        t0 = time.perf_counter()
        num_envs = self.vector_env.num_envs
        steps = max(num_samples // num_envs, 1)
        if self.batched_postprocessing:
            batch = self._collect_batched(steps)
        else:
            batch = self._collect_incremental(steps)
        self.stats.wall_time += time.perf_counter() - t0
        self.stats.env_frames += steps * num_envs
        self.stats.sample_steps += len(batch["rewards"])
        self.stats.episode_returns = \
            self.vector_env.finished_episode_returns
        return batch

    # -- RLgraph mode: batched inference + batched post-processing ---------
    def _collect_batched(self, steps: int) -> Dict[str, np.ndarray]:
        num_envs = self.vector_env.num_envs
        states_buf, pre_buf, action_buf = [], [], []
        reward_buf, terminal_buf, next_pre_buf = [], [], []
        preprocessed = None
        for _ in range(steps):
            out = self.agent.get_actions(self._states)
            # Snapshot before dispatch: in zero-copy mode the buffer that
            # "preprocessed" aliases is rewritten as soon as envs step.
            actions, preprocessed = out[0], self._snap(out[-1])
            # Dispatch stepping, then do rollout bookkeeping while the
            # envs run (a no-op overlap on the sequential engine).
            self.vector_env.step_async(actions)
            pre_buf.append(preprocessed)
            action_buf.append(actions)
            next_states, rewards, terminals = self.vector_env.step_wait()
            reward_buf.append(rewards)
            terminal_buf.append(terminals)
            self._states = next_states
        # Next-state preprocessing: one extra batched call on the final
        # frontier; intermediate next-states are the following row.
        out = self.agent.get_actions(self._states)
        frontier_pre = out[-1]
        pre_arr = np.asarray(pre_buf)                      # (T, E, ...)
        next_pre_arr = np.concatenate([pre_arr[1:], frontier_pre[None]], axis=0)
        actions_arr = np.asarray(action_buf)
        rewards_arr = np.asarray(reward_buf, dtype=np.float32)
        terminals_arr = np.asarray(terminal_buf, dtype=bool)

        s, a, r, t, ns = batched_n_step(pre_arr, actions_arr, rewards_arr,
                                        terminals_arr, next_pre_arr,
                                        self.n_step, self.discount)
        batch = {"states": s, "actions": a, "rewards": r, "terminals": t,
                 "next_states": ns}
        if self.worker_side_prioritization:
            td = self._td_errors(batch)
            batch["priorities"] = np.abs(td) + 1e-6
        return batch

    # -- RLlib-like mode: per-step, per-env incremental post-processing ------
    def _collect_incremental(self, steps: int) -> Dict[str, np.ndarray]:
        num_envs = self.vector_env.num_envs
        samples = {k: [] for k in ["states", "actions", "rewards",
                                   "terminals", "next_states"]}
        priorities = []
        for _ in range(steps):
            out = self.agent.get_actions(self._states)
            actions, preprocessed = out[0], out[-1]
            preprocessed = self._snap(preprocessed)
            next_states, rewards, terminals = self.vector_env.step(actions)
            out_next = self.agent.get_actions(next_states)
            next_pre = self._snap(out_next[-1])
            # Per-env accumulation (python-loop accounting).
            for e in range(num_envs):
                ready = self._accumulators[e].push(
                    preprocessed[e], actions[e], rewards[e], terminals[e],
                    next_pre[e])
                for (s, a, r, t, ns) in ready:
                    samples["states"].append(s)
                    samples["actions"].append(a)
                    samples["rewards"].append(r)
                    samples["terminals"].append(t)
                    samples["next_states"].append(ns)
                    if self.worker_side_prioritization:
                        # One executor call *per sample* — the pattern the
                        # paper identifies as RLlib's bottleneck.
                        td = self._td_errors({
                            "states": np.asarray([s]),
                            "actions": np.asarray([a]),
                            "rewards": np.asarray([r], np.float32),
                            "terminals": np.asarray([t], bool),
                            "next_states": np.asarray([ns]),
                        })
                        priorities.append(abs(float(td[0])) + 1e-6)
            self._states = next_states
        batch = {k: np.asarray(v) for k, v in samples.items()}
        batch["rewards"] = batch["rewards"].astype(np.float32)
        if self.worker_side_prioritization:
            batch["priorities"] = np.asarray(priorities, np.float32)
        return batch

    def _td_errors(self, batch) -> np.ndarray:
        return np.asarray(self.agent.call_api(
            "get_td_errors", batch["states"], batch["actions"],
            np.asarray(batch["rewards"], np.float32),
            np.asarray(batch["terminals"], bool), batch["next_states"],
            np.ones(len(batch["rewards"]), np.float32)))

    # ------------------------------------------------------------------
    def execute_timesteps(self, num_timesteps: int, update_interval: int = 4,
                          update_after: int = 200) -> WorkerStats:
        """Local training loop: act, observe into agent memory, update."""
        t0 = time.perf_counter()
        num_envs = self.vector_env.num_envs
        steps = max(num_timesteps // num_envs, 1)
        prev_pre = None
        prev_actions = None
        prev_rewards = None
        prev_terminals = None
        for i in range(steps):
            out = self.agent.get_actions(self._states)
            actions, preprocessed = out[0], self._snap(out[-1])
            # Overlap: memory insertion and the learner update run while
            # the envs step in the background (threaded/async engines).
            self.vector_env.step_async(actions)
            if prev_pre is not None:
                self.agent.observe_batch(prev_pre, prev_actions, prev_rewards,
                                         prev_terminals, preprocessed)
            total = (i + 1) * num_envs
            if total > update_after and i % update_interval == 0:
                self.agent.update()
            next_states, rewards, terminals = self.vector_env.step_wait()
            prev_pre, prev_actions = preprocessed, actions
            prev_rewards, prev_terminals = rewards, terminals
            self._states = next_states
        self.stats.wall_time += time.perf_counter() - t0
        self.stats.env_frames += steps * num_envs
        self.stats.episode_returns = self.vector_env.finished_episode_returns
        return self.stats
