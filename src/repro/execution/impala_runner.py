"""IMPALA actor-learner runner (paper §5.1, Fig. 9).

Actors roll the policy for ``rollout_length`` steps and push time-major
rollouts into a globally shared blocking FIFO queue; the learner dequeues
a batch of rollouts, passes it through a one-slot staging area (to hide
"device transfer" latency) and applies a v-trace update. Actors pull
fresh weights after every rollout — the weight lag is what v-trace's
importance correction absorbs.

``redundant_assignments=True`` reproduces the inefficiency the paper
found in DeepMind's reference actor ("unneeded variable assignments in
the actor", §5.1): every acting step re-assigns the full policy weight
set, exactly the memcpy the reference implementation wasted. Removing it
"yielded 20% improvement in a single-worker setting" — bench E8.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.environments.vector_env import vector_env_from_spec
from repro.execution.worker import snapshot_fn
from repro.utils.errors import RLGraphError


class IMPALAActor(threading.Thread):
    """One acting thread: local agent copy + env vector + rollout loop."""

    def __init__(self, actor_index: int, agent_factory: Callable,
                 env_factory: Callable, rollout_queue: "queue.Queue",
                 weight_source, rollout_length: int = 20, num_envs: int = 1,
                 redundant_assignments: bool = False,
                 stop_event: Optional[threading.Event] = None,
                 vector_env_spec=None):
        super().__init__(daemon=True, name=f"impala-actor-{actor_index}")
        self.actor_index = actor_index
        self.agent = agent_factory()
        envs = [env_factory(actor_index * 1000 + i) for i in range(num_envs)]
        self.vector_env = vector_env_from_spec(vector_env_spec, envs=envs)
        self._snap = snapshot_fn(self.vector_env)
        self.rollout_queue = rollout_queue
        self.weight_source = weight_source
        self.rollout_length = int(rollout_length)
        self.redundant_assignments = redundant_assignments
        self.stop_event = stop_event or threading.Event()
        self.env_frames = 0
        self.rollouts_produced = 0
        self._episodes_shipped = 0

    def run(self):
        states = self.vector_env.reset_all()
        while not self.stop_event.is_set():
            rollout = {k: [] for k in ["states", "actions",
                                       "behaviour_log_probs", "rewards",
                                       "terminals"]}
            for _ in range(self.rollout_length):
                if self.redundant_assignments:
                    # The DM-reference wasted memcpy: re-assign the full
                    # weight set every acting step.
                    self.agent.set_weights(self.agent.get_weights())
                actions, log_probs, preprocessed = self.agent.get_actions(
                    states)
                # Snapshot before dispatch (zero-copy buffer safety).
                preprocessed = self._snap(preprocessed)
                # Rollout assembly overlaps env stepping on async engines.
                self.vector_env.step_async(actions)
                rollout["states"].append(preprocessed)
                rollout["actions"].append(actions)
                rollout["behaviour_log_probs"].append(log_probs)
                next_states, rewards, terminals = self.vector_env.step_wait()
                rollout["rewards"].append(rewards)
                rollout["terminals"].append(terminals)
                states = next_states
                self.env_frames += self.vector_env.num_envs
            bootstrap = self._snap(self.agent.get_actions(states)[-1])
            # Ship only episodes finished since the last rollout — the
            # runner accumulates across rollouts, so resending the full
            # history would double-count old episodes in mean_return.
            # The offset advances only after a successful put: a dropped
            # (queue-full) rollout re-ships its episodes with the next.
            new_returns, shipped_offset = \
                self.vector_env.finished_returns_since(self._episodes_shipped)
            item = {
                "states": np.asarray(rollout["states"]),
                "actions": np.asarray(rollout["actions"]),
                "behaviour_log_probs": np.asarray(
                    rollout["behaviour_log_probs"], np.float32),
                "rewards": np.asarray(rollout["rewards"], np.float32),
                "terminals": np.asarray(rollout["terminals"], bool),
                "bootstrap_states": bootstrap,
                "episode_returns": list(new_returns),
            }
            try:
                self.rollout_queue.put(item, timeout=5.0)
                self.rollouts_produced += 1
                self._episodes_shipped = shipped_offset
            except queue.Full:
                continue  # back-pressure: learner is saturated
            # Weight pull after each rollout (actor-learner lag).
            weights = self.weight_source()
            if weights is not None:
                self.agent.set_weights(weights)


class IMPALARunner:
    """Coordinates actors and the learner loop."""

    def __init__(self, learner_agent, agent_factory: Callable,
                 env_factory: Callable, num_actors: int = 2,
                 envs_per_actor: int = 1, rollout_length: int = 20,
                 batch_size: int = 2, queue_capacity: int = 64,
                 redundant_assignments: bool = False,
                 vector_env_spec=None):
        self.learner = learner_agent
        self.batch_size = int(batch_size)
        self.rollout_queue: "queue.Queue" = queue.Queue(maxsize=queue_capacity)
        self.stop_event = threading.Event()
        self._weights_lock = threading.Lock()
        self._weights = learner_agent.get_weights()
        self._staged: Optional[List[Dict]] = None  # one-slot staging area
        self.actors = [
            IMPALAActor(i, agent_factory, env_factory, self.rollout_queue,
                        self._get_weights, rollout_length=rollout_length,
                        num_envs=envs_per_actor,
                        redundant_assignments=redundant_assignments,
                        stop_event=self.stop_event,
                        vector_env_spec=vector_env_spec)
            for i in range(num_actors)
        ]
        self.episode_returns: List[float] = []

    def _get_weights(self):
        with self._weights_lock:
            return self._weights

    def _publish_weights(self):
        with self._weights_lock:
            self._weights = self.learner.get_weights()

    def _dequeue_batch(self) -> Optional[List[Dict]]:
        items = []
        deadline = time.monotonic() + 5.0
        while len(items) < self.batch_size:
            try:
                items.append(self.rollout_queue.get(timeout=0.2))
            except queue.Empty:
                if time.monotonic() > deadline:
                    return items if items else None
        return items

    def run(self, duration: float = 5.0,
            updates_enabled: bool = True) -> Dict:
        """Run actors + learner loop for ``duration`` seconds."""
        for actor in self.actors:
            actor.start()
        t_start = time.perf_counter()
        updates = 0
        losses = []
        reward_timeline = []
        while time.perf_counter() - t_start < duration:
            batch = self._dequeue_batch()
            if batch is None:
                continue
            # Staging area: train on the previously staged batch while the
            # fresh one waits (first iteration trains on the fresh one).
            staged, self._staged = self._staged, batch
            train_batch = staged if staged is not None else batch
            for item in train_batch:
                self.episode_returns.extend(item.pop("episode_returns", []))
            if updates_enabled:
                merged = _merge_rollouts(train_batch)
                loss, _, _ = self.learner.update(merged)
                losses.append(loss)
                updates += 1
                self._publish_weights()
                reward_timeline.append(
                    (time.perf_counter() - t_start,
                     float(np.mean(self.episode_returns[-20:]))
                     if self.episode_returns else float("nan")))
        self.stop_event.set()
        for actor in self.actors:
            actor.join(timeout=5.0)
        wall = time.perf_counter() - t_start
        env_frames = sum(a.env_frames for a in self.actors)
        return {
            "env_frames": env_frames,
            "env_frames_per_second": env_frames / wall,
            "learner_updates": updates,
            "wall_time": wall,
            "losses": losses,
            "reward_timeline": reward_timeline,
            "mean_return": (float(np.mean(self.episode_returns[-20:]))
                            if self.episode_returns else None),
        }


def _merge_rollouts(items: List[Dict]) -> Dict:
    """Stack a list of (T, E, ...) rollouts into one (T, B, ...) batch."""
    if not items:
        raise RLGraphError("Cannot merge an empty rollout list")
    return {
        "states": np.concatenate([i["states"] for i in items], axis=1),
        "actions": np.concatenate([i["actions"] for i in items], axis=1),
        "behaviour_log_probs": np.concatenate(
            [i["behaviour_log_probs"] for i in items], axis=1),
        "rewards": np.concatenate([i["rewards"] for i in items], axis=1),
        "terminals": np.concatenate([i["terminals"] for i in items], axis=1),
        "bootstrap_states": np.concatenate(
            [i["bootstrap_states"] for i in items], axis=0),
    }
