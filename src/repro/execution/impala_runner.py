"""IMPALA actor-learner runner (paper §5.1, Fig. 9).

Actors roll the policy for ``rollout_length`` steps and push time-major
rollouts into a globally shared blocking FIFO queue; the learner dequeues
a batch of rollouts, passes it through a one-slot staging area (to hide
"device transfer" latency) and applies a v-trace update. Actors pull
fresh weights after every rollout — the weight lag is what v-trace's
importance correction absorbs.

``redundant_assignments=True`` reproduces the inefficiency the paper
found in DeepMind's reference actor ("unneeded variable assignments in
the actor", §5.1): every acting step re-assigns the full policy weight
set, exactly the memcpy the reference implementation wasted. Removing it
"yielded 20% improvement in a single-worker setting" — bench E8.

Two parallel backends share one rollout-production core
(:class:`IMPALAActorCore`):

* ``parallel_spec=None``/``"thread"`` — one Python thread per actor
  (the seed behavior; fine when acting releases the GIL);
* ``parallel_spec="process"`` — each actor is a raylite **process**
  actor; a feeder thread keeps one ``rollout()`` task in flight per
  actor, drains completed rollouts (shipped through shared memory,
  decoded zero-copy) into the same FIFO queue, and pushes fresh weights
  whenever the learner has published a new version — preserving the
  pull-after-every-rollout weight-lag semantics v-trace corrects for.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.execution.checkpointing import (
    CheckpointManager,
    resolve_checkpoint_spec,
)
from repro.execution.parallel import (
    notify_weight_listeners,
    resolve_parallel_spec,
)
from repro.execution.supervision import (
    ReplicaFactory,
    SupervisionError,
    Supervisor,
    resolve_supervision_spec,
)
from repro.execution.worker import build_vector_env, snapshot_fn
from repro.utils.errors import RLGraphError


class IMPALAActorCore:
    """Rollout production for one IMPALA actor: local agent copy + env
    vector + the acting loop.  Backend-agnostic — the thread actor wraps
    it directly; the process mode runs it as a raylite actor."""

    def __init__(self, actor_index: int, agent_factory: Callable,
                 env_factory: Callable, rollout_length: int = 20,
                 num_envs: int = 1, redundant_assignments: bool = False,
                 vector_env_spec=None, parallel_spec=None):
        self.actor_index = actor_index
        self.agent = agent_factory()
        self.vector_env = build_vector_env(
            env_factory, num_envs, actor_index * 1000,
            vector_env_spec=vector_env_spec, parallel_spec=parallel_spec)
        self._snap = snapshot_fn(self.vector_env)
        self.rollout_length = int(rollout_length)
        self.redundant_assignments = redundant_assignments
        self.env_frames = 0
        self.rollouts_produced = 0
        self._episodes_shipped = 0
        self._pending_offset: Optional[int] = None
        self._states = None

    def set_weights(self, weights) -> int:
        self.agent.set_weights(weights)
        return self.actor_index

    def rollout(self, auto_commit: bool = True) -> Dict:
        """Produce one time-major rollout item.

        ``auto_commit=False`` defers the episode-shipping offset until
        :meth:`commit_episodes` — callers that may *drop* the item
        (queue back-pressure in the thread actor) re-ship its finished
        episodes with the next rollout instead of losing them.
        """
        if self._states is None:
            self._states = self.vector_env.reset_all()
        states = self._states
        rollout = {k: [] for k in ["states", "actions",
                                   "behaviour_log_probs", "rewards",
                                   "terminals"]}
        for _ in range(self.rollout_length):
            if self.redundant_assignments:
                # The DM-reference wasted memcpy: re-assign the full
                # weight set every acting step.
                self.agent.set_weights(self.agent.get_weights())
            actions, log_probs, preprocessed = self.agent.get_actions(states)
            # Snapshot before dispatch (zero-copy buffer safety).
            preprocessed = self._snap(preprocessed)
            # Rollout assembly overlaps env stepping on async engines.
            self.vector_env.step_async(actions)
            rollout["states"].append(preprocessed)
            rollout["actions"].append(actions)
            rollout["behaviour_log_probs"].append(log_probs)
            next_states, rewards, terminals = self.vector_env.step_wait()
            rollout["rewards"].append(rewards)
            rollout["terminals"].append(terminals)
            states = next_states
            self.env_frames += self.vector_env.num_envs
        self._states = states
        bootstrap = self._snap(self.agent.get_actions(states)[-1])
        # Ship only episodes finished since the last committed rollout —
        # the runner accumulates across rollouts, so resending the full
        # history would double-count old episodes in mean_return.
        new_returns, offset = \
            self.vector_env.finished_returns_since(self._episodes_shipped)
        if auto_commit:
            self._episodes_shipped = offset
            # Seed semantics: rollouts_produced counts *delivered*
            # rollouts; deferred-commit callers count at commit time so
            # a dropped (queue-full) rollout is not counted.
            self.rollouts_produced += 1
        else:
            self._pending_offset = offset
        return {
            "states": np.asarray(rollout["states"]),
            "actions": np.asarray(rollout["actions"]),
            "behaviour_log_probs": np.asarray(
                rollout["behaviour_log_probs"], np.float32),
            "rewards": np.asarray(rollout["rewards"], np.float32),
            "terminals": np.asarray(rollout["terminals"], bool),
            "bootstrap_states": bootstrap,
            "episode_returns": list(new_returns),
        }

    def commit_episodes(self) -> None:
        """Advance the episode-shipping offset after a successful put."""
        if self._pending_offset is not None:
            self._episodes_shipped = self._pending_offset
            self._pending_offset = None
            self.rollouts_produced += 1

    def get_stats(self) -> Dict:
        return {"env_frames": self.env_frames,
                "rollouts_produced": self.rollouts_produced}


class IMPALAActor(threading.Thread):
    """Thread-backend actor: an :class:`IMPALAActorCore` on a loop."""

    def __init__(self, actor_index: int, agent_factory: Callable,
                 env_factory: Callable, rollout_queue: "queue.Queue",
                 weight_source, rollout_length: int = 20, num_envs: int = 1,
                 redundant_assignments: bool = False,
                 stop_event: Optional[threading.Event] = None,
                 vector_env_spec=None, parallel_spec=None):
        super().__init__(daemon=True, name=f"impala-actor-{actor_index}")
        self.actor_index = actor_index
        self.core = IMPALAActorCore(
            actor_index, agent_factory, env_factory,
            rollout_length=rollout_length, num_envs=num_envs,
            redundant_assignments=redundant_assignments,
            vector_env_spec=vector_env_spec, parallel_spec=parallel_spec)
        self.rollout_queue = rollout_queue
        self.weight_source = weight_source
        self.stop_event = stop_event or threading.Event()

    # Back-compat accessors (runner stats, tests):
    @property
    def agent(self):
        return self.core.agent

    @property
    def vector_env(self):
        return self.core.vector_env

    @property
    def env_frames(self) -> int:
        return self.core.env_frames

    @property
    def rollouts_produced(self) -> int:
        return self.core.rollouts_produced

    def run(self):
        while not self.stop_event.is_set():
            item = self.core.rollout(auto_commit=False)
            try:
                self.rollout_queue.put(item, timeout=5.0)
                # The offset advances only after a successful put: a
                # dropped (queue-full) rollout re-ships its episodes
                # with the next one.
                self.core.commit_episodes()
            except queue.Full:
                continue  # back-pressure: learner is saturated
            # Weight pull after each rollout (actor-learner lag).
            weights = self.weight_source()
            if weights is not None:
                self.core.agent.set_weights(weights)


class IMPALARunner:
    """Coordinates actors and the learner loop."""

    def __init__(self, learner_agent, agent_factory: Callable,
                 env_factory: Callable, num_actors: int = 2,
                 envs_per_actor: int = 1, rollout_length: int = 20,
                 batch_size: int = 2, queue_capacity: int = 64,
                 redundant_assignments: bool = False,
                 vector_env_spec=None, parallel_spec=None,
                 weight_listeners=None, supervision_spec=None,
                 checkpoint_spec=None):
        self.learner = learner_agent
        self.batch_size = int(batch_size)
        # Eval-during-training hook: every published weight version also
        # goes to these listeners (e.g. a serving PolicyServer).
        self.weight_listeners = list(weight_listeners or [])
        self.parallel = resolve_parallel_spec(parallel_spec)
        self.rollout_queue: "queue.Queue" = queue.Queue(maxsize=queue_capacity)
        self.stop_event = threading.Event()
        self._weights_lock = threading.Lock()
        # Versioned pushes travel flat: one ndarray per publish (one
        # shared-memory block in process mode), scattered in place on
        # the actor side. Checkpoints keep the dict path.
        self._weights = learner_agent.get_weights(flat=True)
        self._weights_version = 0
        self._staged: Optional[List[Dict]] = None  # one-slot staging area
        self.actors: List[IMPALAActor] = []
        self.actor_handles: List = []
        # Supervision restarts crashed PROCESS actors; thread-mode actors
        # are plain threads (not raylite handles) and cannot crash from
        # the outside, so the spec is a no-op there.
        self.supervision = resolve_supervision_spec(supervision_spec)
        self.supervisor = (Supervisor(self.supervision)
                           if self.supervision.enabled
                           and self.parallel.is_process else None)
        self.supervision_failures: List[str] = []
        ckpt = resolve_checkpoint_spec(checkpoint_spec)
        self.checkpoints = CheckpointManager(ckpt) if ckpt else None
        if self.parallel.is_process:
            factories = [
                ReplicaFactory(self.parallel, IMPALAActorCore,
                               i, agent_factory, env_factory,
                               rollout_length=rollout_length,
                               num_envs=envs_per_actor,
                               redundant_assignments=redundant_assignments,
                               vector_env_spec=vector_env_spec,
                               parallel_spec=self.parallel)
                for i in range(num_actors)
            ]
            self.actor_handles = [factory() for factory in factories]
            if self.supervisor is not None:
                for i, (handle, factory) in enumerate(
                        zip(self.actor_handles, factories)):
                    self.supervisor.register(
                        f"impala-actor-{i}", handle, factory,
                        on_restart=self._sync_restarted_actor)
        else:
            self.actors = [
                IMPALAActor(i, agent_factory, env_factory, self.rollout_queue,
                            self._get_weights, rollout_length=rollout_length,
                            num_envs=envs_per_actor,
                            redundant_assignments=redundant_assignments,
                            stop_event=self.stop_event,
                            vector_env_spec=vector_env_spec,
                            parallel_spec=self.parallel)
                for i in range(num_actors)
            ]
        self.episode_returns: List[float] = []

    def _get_weights(self):
        with self._weights_lock:
            return self._weights

    def _publish_weights(self):
        with self._weights_lock:
            self._weights = self.learner.get_weights(flat=True)
            self._weights_version += 1
            weights = self._weights
        notify_weight_listeners(self.weight_listeners, weights)

    def _sync_restarted_actor(self, handle) -> None:
        """Push the current published weight version to a rejoined actor
        so it rolls out at the latest policy, not its fresh init."""
        handle.set_weights.remote(self._get_weights())

    # -- process-mode feeder ------------------------------------------------
    def _recover_handle(self, handle, synced):
        """Supervised recovery for one dead process actor: restart it
        (bounded backoff; the restart hook pushed current weights) and
        return the slot's live handle — or None when unsupervised, the
        run is stopping, or the slot exhausted its restart budget."""
        if self.supervisor is None or self.stop_event.is_set():
            return None
        try:
            replacement = self.supervisor.ensure_alive(handle)
        except SupervisionError as exc:
            self.supervision_failures.append(str(exc))
            return None
        if replacement is not handle:
            self.actor_handles = [replacement if h is handle else h
                                  for h in self.actor_handles]
            with self._weights_lock:
                synced[id(replacement)] = self._weights_version
        return replacement

    def _feed_from_handles(self):
        """Keep one rollout task in flight per process actor; drain
        completed rollouts (shared-memory transport, zero-copy decode)
        into the learner queue; push weights when a new version is out.
        With supervision enabled a crashed actor is restarted and
        re-armed in place (its in-flight rollout is lost)."""
        from repro import raylite
        synced = {id(h): 0 for h in self.actor_handles}
        # Prime one task per actor; an actor already dead at feeder start
        # is recovered (or dropped) instead of killing the feeder thread.
        in_flight = {}
        for handle in list(self.actor_handles):
            try:
                in_flight[handle.rollout.remote()] = handle
            except BaseException:
                handle = self._recover_handle(handle, synced)
                if handle is not None:
                    in_flight[handle.rollout.remote()] = handle
        while in_flight and not self.stop_event.is_set():
            ready, _ = raylite.wait(list(in_flight.keys()), num_returns=1,
                                    timeout=0.1)
            for ref in ready:
                handle = in_flight.pop(ref)
                try:
                    item = raylite.get(ref)
                except BaseException:
                    # Actor died (or deliberate shutdown): restart the
                    # slot if supervised, otherwise stop re-arming it.
                    handle = self._recover_handle(handle, synced)
                    if handle is not None:
                        in_flight[handle.rollout.remote()] = handle
                    continue
                delivered = False
                while not self.stop_event.is_set():
                    try:
                        self.rollout_queue.put(item, timeout=0.2)
                        delivered = True
                        break
                    except queue.Full:
                        continue  # back-pressure: learner is saturated
                if not delivered:
                    break
                try:
                    with self._weights_lock:
                        version, weights = (self._weights_version,
                                            self._weights)
                    if version > synced.get(id(handle), 0):
                        handle.set_weights.remote(weights)
                        synced[id(handle)] = version
                    in_flight[handle.rollout.remote()] = handle
                except BaseException:
                    # Submission to a just-died actor: same recovery.
                    handle = self._recover_handle(handle, synced)
                    if handle is not None:
                        in_flight[handle.rollout.remote()] = handle

    def _dequeue_batch(self) -> Optional[List[Dict]]:
        items = []
        deadline = time.monotonic() + 5.0
        while len(items) < self.batch_size:
            try:
                items.append(self.rollout_queue.get(timeout=0.2))
            except queue.Empty:
                if time.monotonic() > deadline:
                    return items if items else None
        return items

    def run(self, duration: float = 5.0,
            updates_enabled: bool = True) -> Dict:
        """Run actors + learner loop for ``duration`` seconds."""
        feeder = None
        if self.parallel.is_process:
            feeder = threading.Thread(target=self._feed_from_handles,
                                      daemon=True, name="impala-feeder")
            feeder.start()
        for actor in self.actors:
            actor.start()
        t_start = time.perf_counter()
        updates = 0
        losses = []
        reward_timeline = []
        while time.perf_counter() - t_start < duration:
            batch = self._dequeue_batch()
            if batch is None:
                continue
            # Staging area: train on the previously staged batch while the
            # fresh one waits (first iteration trains on the fresh one).
            staged, self._staged = self._staged, batch
            train_batch = staged if staged is not None else batch
            for item in train_batch:
                self.episode_returns.extend(item.pop("episode_returns", []))
            if updates_enabled:
                merged = _merge_rollouts(train_batch)
                loss, _, _ = self.learner.update(merged)
                losses.append(loss)
                updates += 1
                self._publish_weights()
                if self.checkpoints is not None:
                    self.checkpoints.maybe_save(
                        lambda: {"learner": self.learner.full_state()},
                        updates)
                reward_timeline.append(
                    (time.perf_counter() - t_start,
                     float(np.mean(self.episode_returns[-20:]))
                     if self.episode_returns else float("nan")))
        self.stop_event.set()
        for actor in self.actors:
            actor.join(timeout=5.0)
        env_frames = sum(a.env_frames for a in self.actors)
        if self.parallel.is_process:
            if feeder is not None:
                feeder.join(timeout=5.0)
            env_frames += self._drain_handle_stats()
        wall = time.perf_counter() - t_start
        return {
            "env_frames": env_frames,
            "env_frames_per_second": env_frames / wall,
            "learner_updates": updates,
            "wall_time": wall,
            "losses": losses,
            "reward_timeline": reward_timeline,
            "mean_return": (float(np.mean(self.episode_returns[-20:]))
                            if self.episode_returns else None),
            "restarts": (self.supervisor.total_restarts
                         if self.supervisor else 0),
            "supervision_failures": list(self.supervision_failures),
        }

    def restore_latest(self) -> bool:
        """Restore the learner from the newest checkpoint and publish
        the restored weights as a fresh version for the actors."""
        if self.checkpoints is None:
            raise RLGraphError("IMPALARunner has no checkpoint_spec")
        latest = self.checkpoints.load_latest()
        if latest is None:
            return False
        self.learner.restore_full_state(latest[0]["learner"])
        self._publish_weights()
        return True

    def _drain_handle_stats(self) -> int:
        """Collect env-frame counts from process actors, then reap them."""
        from repro import raylite
        env_frames = 0
        refs = []
        for h in self.actor_handles:
            try:
                refs.append(h.get_stats.remote())
            except Exception:
                continue  # already dead; its frames are lost
        for ref in refs:
            try:
                env_frames += raylite.get(ref, timeout=5.0)["env_frames"]
            except Exception:
                continue  # actor died mid-run; its frames are lost
        for handle in self.actor_handles:
            try:
                raylite.kill(handle)
            except Exception:
                pass
        self.actor_handles = []
        return env_frames


def _merge_rollouts(items: List[Dict]) -> Dict:
    """Stack a list of (T, E, ...) rollouts into one (T, B, ...) batch."""
    if not items:
        raise RLGraphError("Cannot merge an empty rollout list")
    return {
        "states": np.concatenate([i["states"] for i in items], axis=1),
        "actions": np.concatenate([i["actions"] for i in items], axis=1),
        "behaviour_log_probs": np.concatenate(
            [i["behaviour_log_probs"] for i in items], axis=1),
        "rewards": np.concatenate([i["rewards"] for i in items], axis=1),
        "terminals": np.concatenate([i["terminals"] for i in items], axis=1),
        "bootstrap_states": np.concatenate(
            [i["bootstrap_states"] for i in items], axis=0),
    }
