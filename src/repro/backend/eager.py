"""Define-by-run tensors with a reverse-mode gradient tape.

This is the PyTorch-style backend: ops compute immediately on NumPy
arrays; if an input requires gradients, the output :class:`ETensor`
remembers its parents and op spec so :func:`backward` can replay the
shared gradient rules from :mod:`repro.backend.ops`.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.backend import context

_ids = itertools.count()


class ETensor:
    """An eager tensor that can participate in autodiff."""

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_spec", "_attrs",
                 "id")

    def __init__(self, data, requires_grad: bool = False, parents=None,
                 spec=None, attrs=None):
        self.data = np.asarray(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents: Sequence[Any] = parents or ()
        self._spec = spec
        self._attrs: Dict[str, Any] = attrs or {}
        self.id = next(_ids)

    # -- numpy-ish surface ------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def ndim(self):
        return self.data.ndim

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self):
        return self.data.item()

    def zero_grad(self):
        self.grad = None

    def detach(self) -> "ETensor":
        return ETensor(self.data, requires_grad=False)

    def __repr__(self):
        flag = ", grad" if self.requires_grad else ""
        return f"<ETensor shape={self.data.shape} dtype={self.data.dtype}{flag}>"

    def __len__(self):
        return len(self.data)

    # Operator sugar mirrors Node's.
    def __add__(self, other):
        from repro.backend import functional as F
        return F.add(self, other)

    def __radd__(self, other):
        from repro.backend import functional as F
        return F.add(other, self)

    def __sub__(self, other):
        from repro.backend import functional as F
        return F.sub(self, other)

    def __rsub__(self, other):
        from repro.backend import functional as F
        return F.sub(other, self)

    def __mul__(self, other):
        from repro.backend import functional as F
        return F.mul(self, other)

    def __rmul__(self, other):
        from repro.backend import functional as F
        return F.mul(other, self)

    def __truediv__(self, other):
        from repro.backend import functional as F
        return F.div(self, other)

    def __rtruediv__(self, other):
        from repro.backend import functional as F
        return F.div(other, self)

    def __neg__(self):
        from repro.backend import functional as F
        return F.neg(self)

    def __getitem__(self, item):
        from repro.backend import functional as F
        return F.getitem(self, item)


def raw(handle) -> np.ndarray:
    """The NumPy value behind an eager handle (ETensor or array-like)."""
    if isinstance(handle, ETensor):
        return handle.data
    return handle


def _needs_grad(handle) -> bool:
    return isinstance(handle, ETensor) and (handle.requires_grad
                                            or handle._parents)


def backward(output: ETensor, grad: Optional[np.ndarray] = None) -> None:
    """Reverse-mode accumulation of ``output`` gradients into leaf
    ``.grad`` fields.

    Gradient rules are evaluated under ``no_grad`` (no second-order
    support, matching the library's needs).
    """
    if grad is None:
        grad = np.ones_like(output.data, dtype=np.float32)
    # Topological sort over the autodiff DAG.
    topo: List[ETensor] = []
    seen = set()

    def visit(t):
        if not isinstance(t, ETensor) or t.id in seen or not _needs_grad(t):
            return
        seen.add(t.id)
        for p in t._parents:
            visit(p)
        topo.append(t)

    visit(output)
    grads: Dict[int, np.ndarray] = {output.id: np.asarray(grad)}

    with context.no_grad():
        for t in reversed(topo):
            g = grads.pop(t.id, None)
            if g is None:
                continue
            if t.requires_grad and t._spec is None:
                # Leaf: accumulate.
                t.grad = g if t.grad is None else t.grad + g
                continue
            if t._spec is None:
                continue
            input_grads = t._spec.grad(t._parents, t, g, t._attrs)
            if t.requires_grad:
                # Non-leaf that also wants its grad retained.
                t.grad = g if t.grad is None else t.grad + g
            for parent, pg in zip(t._parents, input_grads):
                if pg is None or not isinstance(parent, ETensor):
                    continue
                if not _needs_grad(parent):
                    continue
                pg_val = raw(pg)
                if parent.id in grads:
                    grads[parent.id] = grads[parent.id] + pg_val
                else:
                    grads[parent.id] = pg_val


def collect_leaf_grads(output: ETensor, leaves: Sequence[ETensor],
                       grad: Optional[np.ndarray] = None):
    """Run backward and return grads for ``leaves`` (zeros when untouched)."""
    for leaf in leaves:
        leaf.zero_grad()
    backward(output, grad)
    out = []
    for leaf in leaves:
        if leaf.grad is None:
            out.append(np.zeros_like(leaf.data, dtype=np.float32))
        else:
            out.append(leaf.grad)
    return out
