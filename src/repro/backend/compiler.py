"""Graph compiler for the symbolic backend.

The paper's premise is that expressing RL logic as a component graph lets
the backend *optimize* execution instead of replaying it op by op ("all
relevant operations into a single session call", §1). This module is that
optimizer: it turns a fetch-set's topological plan into a
:class:`CompiledPlan` through classic compiler passes and then executes
it with a flat slot-based executor instead of the per-node dict walk.

Pass pipeline (levels are cumulative):

``basic``
    1. **Constant folding** — stateless nodes whose inputs are all
       constants are evaluated once at compile time and become
       preloaded slab constants.
    2. **Common-subexpression elimination** — stateless nodes with
       identical ``(op, input-ids, attrs)`` signatures are merged.
    3. **Dead-node elimination** — nodes no longer reachable from the
       fetches (through data *or* control edges) after folding/CSE are
       dropped. Stateful nodes reachable from the fetches are always
       kept, in their original relative order.

``fused``
    4. **Elementwise fusion** — chains/trees of elementwise ops whose
       intermediates have a single consumer collapse into one fused
       kernel (:func:`repro.backend.kernels.build_fused_kernel`), so a
       whole arithmetic chain costs one executor step.

``native``
    Same passes as ``fused``; execution is then handed to the native C
    codegen backend (:mod:`repro.backend.native`), which compiles the
    whole slot-slab plan into C segments called with zero Python
    dispatch. Falls back to ``fused`` when no C toolchain is present.

All levels finish with:

    5. **Slot allocation** — every surviving value gets an index into a
       preallocated value slab; argument slot tuples are precomputed, and
       slots are reused once their last consumer has run (register
       allocation by liveness), keeping the slab small.
    6. **Memory planning (buffer donation)** — an elementwise (or fused)
       step one of whose inputs is a fresh, non-aliased buffer *dying at
       that step* writes its output in place into that buffer through an
       out-form kernel (:data:`repro.backend.kernels.OUT_KERNELS`)
       instead of allocating. Feeds, fetches, constants, and anything
       aliasing variable state are never donated; a runtime shape/dtype
       guard keeps the in-place write exact, so results stay bitwise
       identical to the interpreter.

Correctness invariants:

* stateful ops (assigns, scatters, random draws, ``py_func``) are never
  folded, merged, or fused, and the surviving steps preserve the original
  topological order, so control-dependency semantics are unchanged;
* folding and fusion call the *registered* op forwards, so results are
  bitwise identical to the interpreter at every optimization level.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import kernels, variables
from repro.backend.graph import Node
from repro.backend.ops import OPS
from repro.utils.errors import RLGraphError

# Ops that are safe to collapse into a fused elementwise kernel: shape-
# preserving / broadcasting NumPy calls with no state and no Python-level
# side effects. (The "where-style" family from backend/ops.py.)
FUSABLE_OPS = frozenset({
    "add", "sub", "mul", "div", "neg", "mod", "power",
    "exp", "log", "sqrt", "square", "abs", "sign", "floor",
    "maximum", "minimum", "clip",
    "relu", "tanh", "sigmoid", "softplus", "atanh",
    "equal", "not_equal", "greater", "greater_equal", "less", "less_equal",
    "logical_and", "logical_or", "logical_not",
    "cast", "where", "identity", "stop_gradient", "ones_like",
})

# Never constant-fold these even when their inputs are constant: their
# output can be unboundedly larger than their inputs.
_NO_FOLD_OPS = frozenset({"tile", "dyn_arange", "zeros2d", "broadcast_like"})

# Stateful ops that do NOT mutate observable state (reads and private RNG
# streams). Any other stateful op — assigns, scatters, py_func — is
# treated as a mutation barrier: a value computed from mutable state on
# one side of the barrier is not interchangeable with the "same"
# expression on the other side, because variable buffers change in place.
_NON_MUTATING_STATEFUL = frozenset({"read_var", "random_uniform",
                                    "random_normal"})

# Don't bake folded constants bigger than this into the plan (bytes).
_FOLD_SIZE_LIMIT = 1 << 20

OPTIMIZE_LEVELS = ("none", "basic", "fused", "native")

# --- memory planning (buffer donation) --------------------------------------
# Ops whose forward ALWAYS returns a freshly allocated array that aliases
# neither its inputs nor variable state. Only values produced by these
# ops may have their buffer donated as an in-place output. View-returning
# ops (reshape/transpose/getitem/identity/...), ops that may pass an
# input through unchanged (unbroadcast_like_op, single-input flatcat),
# and state-returning ops (read_var/assign) are deliberately absent.
_FRESH_OUTPUT_OPS = frozenset({
    "add", "sub", "mul", "div", "neg", "mod", "power",
    "exp", "log", "sqrt", "square", "abs", "sign", "floor",
    "maximum", "minimum", "clip",
    "relu", "tanh", "sigmoid", "softplus", "atanh",
    "equal", "not_equal", "greater", "greater_equal", "less", "less_equal",
    "logical_and", "logical_or", "logical_not",
    "cast", "where", "ones_like",
    "matmul", "reduce_sum", "reduce_mean", "reduce_max", "reduce_min",
    "argmax", "cumsum", "one_hot", "gather", "concat", "stack", "tile",
    "take_index", "zeros2d", "dyn_arange", "anchor", "getitem_grad",
    "gather_grad", "random_uniform", "random_normal", "conv2d",
    "searchsorted", "flip",
})

# Consumer ops guaranteed not to create an alias of their *inputs* that
# survives past the consuming step (they read, compute fresh, and drop
# the argument). A buffer is only donatable when every consumer of its
# value is alias-safe — otherwise a still-live view of the buffer could
# observe the in-place overwrite.
_ALIAS_SAFE_CONSUMERS = _FRESH_OUTPUT_OPS | frozenset({
    "assign", "assign_add", "scatter_update", "scatter_add",
    "size_of", "shape_of", "fused_sgd", "fused_adam", "fused_rmsprop",
})


class CompileStats:
    """Per-plan pass counters, aggregated into SessionStats."""

    __slots__ = ("nodes_total", "nodes_folded", "nodes_cse", "nodes_dead",
                 "nodes_fused", "fused_kernels", "num_steps", "slab_slots",
                 "slab_slots_saved", "buffers_donated", "bytes_saved",
                 "native_segments", "native_steps", "native_py_steps")

    def __init__(self):
        self.nodes_total = 0
        self.nodes_folded = 0
        self.nodes_cse = 0
        self.nodes_dead = 0
        self.nodes_fused = 0
        self.fused_kernels = 0
        self.num_steps = 0
        self.slab_slots = 0
        self.slab_slots_saved = 0
        # Memory planning: steps writing in place into a dying input
        # buffer, and the statically-known bytes of allocation that
        # avoids per run (unknown-shape donations count as 0 bytes).
        self.buffers_donated = 0
        self.bytes_saved = 0
        # Native codegen (filled in by backend/native.py at lowering).
        self.native_segments = 0
        self.native_steps = 0
        self.native_py_steps = 0

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}


def _freeze_attr(value) -> Any:
    """Hashable signature of one attr value (for the CSE key)."""
    if isinstance(value, np.ndarray):
        if value.size <= 256:
            return ("arr", value.tobytes(), str(value.dtype), value.shape)
        return ("obj", id(value))
    if isinstance(value, np.dtype):
        return ("dt", str(value))
    if isinstance(value, slice):
        return ("slice", _freeze_attr(value.start), _freeze_attr(value.stop),
                _freeze_attr(value.step))
    if isinstance(value, (list, tuple)):
        return (type(value).__name__,) + tuple(_freeze_attr(v) for v in value)
    if isinstance(value, dict):
        return ("dict",) + tuple(sorted(
            (k, _freeze_attr(v)) for k, v in value.items()))
    if isinstance(value, type):
        return ("type", value.__module__, value.__qualname__)
    if isinstance(value, (bool, int, float, str, bytes, type(None))):
        return value
    if value is Ellipsis:
        return ("ellipsis",)
    return ("obj", id(value))


def _cse_key(node: Node, input_ids: Sequence[int]) -> Optional[Tuple]:
    try:
        attr_key = tuple(sorted(
            (k, _freeze_attr(v)) for k, v in node.attrs.items()))
    except TypeError:
        return None
    return (node.op, tuple(input_ids), attr_key)


class _Step:
    """One executor step: precomputed forward + slot index arrays.

    For a fused group, ``instructions`` holds the member ops as
    ``(op, forward, attrs, refs)`` so the plan driver can inline them
    with local temporaries; ``forward`` is then the standalone fused
    kernel used by the non-codegen fallback path. ``op`` is the op name
    ("fused" for groups — the native backend reads member ops from
    ``instructions``). ``donate_slot``/``donate_fn`` carry the memory
    plan: when set, the driver writes the step result in place into the
    (dying) buffer at ``donate_slot`` via the out-form kernel.
    """

    __slots__ = ("op", "forward", "attrs", "arg_slots", "out_slot", "name",
                 "instructions", "donate_slot", "donate_fn")

    def __init__(self, op, forward, attrs, arg_slots, out_slot, name,
                 instructions=None, donate_slot=None, donate_fn=None):
        self.op = op
        self.forward = forward
        self.attrs = attrs
        self.arg_slots = arg_slots
        self.out_slot = out_slot
        self.name = name
        self.instructions = instructions
        self.donate_slot = donate_slot
        self.donate_fn = donate_fn


# Plans beyond this many steps fall back to the interpreted step loop
# instead of whole-plan codegen (keeps generated code bounded).
_DRIVER_STEP_LIMIT = 20_000


class CompiledPlan:
    """An optimized, slot-addressed execution plan for one fetch-set."""

    def __init__(self, steps: List[_Step], template: List[Any],
                 feed_slots: List[Tuple[Node, int]], fetch_slots: List[int],
                 stats: CompileStats):
        self._steps = [(s.forward, s.attrs, s.arg_slots, s.out_slot)
                       for s in steps]
        self._template = template
        self._feed_slots = feed_slots
        self._fetch_slots = fetch_slots
        self.steps = steps
        self.stats = stats
        self.codegen_source: Optional[str] = None
        self._driver = (self._build_driver()
                        if len(steps) <= _DRIVER_STEP_LIMIT else None)

    def _emit_call(self, lines, namespace, step, j, args, forward, attrs,
                   tag=""):
        """Emit one (possibly donation-guarded) step-result assignment.

        A donated step checks, per run, that the dying input buffer
        matches the shape/dtype the result had last run (recorded
        adaptively in the ``_g{j}`` guard cell) before writing in place;
        any mismatch — first run, changed batch size, non-array result —
        falls back to the allocating forward and re-records.
        """
        namespace[f"_f{j}{tag}"] = forward
        namespace[f"_a{j}{tag}"] = attrs
        out = step.out_slot
        if step.donate_fn is None:
            lines.append(f"    slab[{out}] = _f{j}{tag}([{args}], _a{j}{tag})")
            return
        namespace[f"_o{j}"] = step.donate_fn
        namespace[f"_g{j}"] = [None]
        lines.append(f"    _d = slab[{step.donate_slot}]")
        lines.append(f"    _e = _g{j}[0]")
        lines.append(f"    if _e is not None and _d.__class__ is _nd "
                     f"and _d.shape == _e[0] and _d.dtype == _e[1]:")
        lines.append(f"        slab[{out}] = _o{j}([{args}], _a{j}{tag}, _d)")
        lines.append("    else:")
        lines.append(f"        _r = _f{j}{tag}([{args}], _a{j}{tag})")
        lines.append("        if _r.__class__ is _nd:")
        lines.append(f"            _g{j}[0] = (_r.shape, _r.dtype)")
        lines.append(f"        slab[{out}] = _r")

    def _build_driver(self):
        """Generate one flat function executing every step against the
        slab — no step loop, no per-step argument-list comprehension."""
        namespace: Dict[str, Any] = {"_nd": np.ndarray}
        lines = ["def _driver(slab):"]
        for j, step in enumerate(self.steps):
            if step.instructions is not None:
                # Inline the fused group: intermediates live in locals
                # (LOAD/STORE_FAST), only the root value touches the slab.
                # Temp names t0..tN are shared across groups on purpose —
                # reassignment drops the previous group's arrays so the
                # allocator can recycle their buffers (refs never cross
                # groups).
                last = len(step.instructions) - 1
                for k, (_op, forward, attrs, refs) in enumerate(
                        step.instructions):
                    args = ", ".join(
                        f"slab[{step.arg_slots[r]}]" if kind == "arg"
                        else f"t{r}"
                        for kind, r in refs)
                    if k == last:
                        self._emit_call(lines, namespace, step, j, args,
                                        forward, attrs, tag=f"_{k}")
                    else:
                        namespace[f"_f{j}_{k}"] = forward
                        namespace[f"_a{j}_{k}"] = attrs
                        lines.append(
                            f"    t{k} = _f{j}_{k}([{args}], _a{j}_{k})")
                continue
            args = ", ".join(f"slab[{i}]" for i in step.arg_slots)
            self._emit_call(lines, namespace, step, j, args, step.forward,
                            step.attrs)
        lines.append("    return slab")
        self.codegen_source = "\n".join(lines)
        exec(compile(self.codegen_source, "<compiled-plan>", "exec"),
             namespace)
        return namespace["_driver"]

    def run(self, feed_values: Dict[int, Any]) -> List[Any]:
        """Execute against a ``{placeholder-id: value}`` feed map."""
        slab = self._template.copy()
        for ph, slot in self._feed_slots:
            try:
                slab[slot] = feed_values[ph.id]
            except KeyError:
                raise RLGraphError(
                    f"Placeholder {ph.name} was not fed (shape {ph.shape})")
        if self._driver is not None:
            self._driver(slab)
        else:
            for forward, attrs, arg_slots, out_slot in self._steps:
                slab[out_slot] = forward([slab[i] for i in arg_slots], attrs)
        # Fetches that alias live variable storage (a bare read_var, or a
        # view of one) are snapshot-copied: later in-place mutation —
        # assigns, donated buffers — must never rewrite a value already
        # handed to the caller.
        out = []
        for s in self._fetch_slots:
            v = slab[s]
            if isinstance(v, np.ndarray) and variables.aliases_state(v):
                v = v.copy()
            out.append(v)
        return out


def compile_plan(plan: Sequence[Node], fetches: Sequence[Node],
                 optimize: str = "fused") -> CompiledPlan:
    """Lower a topologically ordered node plan into a :class:`CompiledPlan`.

    ``optimize`` selects the pass set: ``"basic"`` runs folding + CSE +
    dead-node elimination, ``"fused"`` additionally fuses elementwise
    chains, ``"native"`` compiles with the ``"fused"`` passes (the
    native lowering itself lives in :mod:`repro.backend.native`, which
    wraps the plan this function returns). All compiled levels finish
    with the memory-planning pass (buffer donation). (``"none"`` never
    reaches this function — the Session keeps the plain interpreter.)
    """
    if optimize not in ("basic", "fused", "native"):
        raise RLGraphError(f"Unknown optimize level {optimize!r}")
    stats = CompileStats()
    stats.nodes_total = len(plan)

    # -- pass 0: state epochs ------------------------------------------------
    # epoch[id] counts the mutating stateful nodes scheduled before a node;
    # state_dep[id] marks nodes whose value transitively depends on mutable
    # state. A state-dependent node may only be merged with (CSE) or
    # delayed to (fusion) a position in the *same* epoch — otherwise it
    # would observe variable buffers after an in-place write the
    # interpreter would have sequenced after it.
    epoch: Dict[int, int] = {}
    state_dep: Dict[int, bool] = {}
    current_epoch = 0
    for node in plan:
        state_dep[node.id] = bool(node.stateful) or any(
            state_dep[i.id] for i in node.inputs)
        epoch[node.id] = current_epoch
        if node.stateful and node.op not in _NON_MUTATING_STATEFUL:
            current_epoch += 1

    # -- pass 1+2: constant folding and CSE (single topo walk) -------------
    alias: Dict[int, int] = {}      # node id -> canonical node id (CSE)
    const_values: Dict[int, Any] = {}  # node id -> compile-time value
    nodes_by_id: Dict[int, Node] = {n.id: n for n in plan}

    def resolve(node_id: int) -> int:
        while node_id in alias:
            node_id = alias[node_id]
        return node_id

    cse_table: Dict[Tuple, int] = {}
    fetch_ids = {f.id for f in fetches}
    for node in plan:
        if node.op == "const":
            const_values[node.id] = node.attrs["value"]
            continue
        if (node.op == "placeholder" or node.stateful or node.control_inputs):
            continue
        spec = OPS.get(node.op)
        if spec is None:
            continue
        input_ids = [resolve(i.id) for i in node.inputs]
        if node.op == "anchor":
            # Pass-through whose extra inputs only thread a data
            # dependency (e.g. a memory's size read anchored on the
            # batch-size placeholder): alias to the carried value and
            # let DNE drop the now-unreferenced anchor inputs. A
            # state-DEPENDENT payload keeps its (copying) anchor node —
            # aliasing it would hand fetch consumers the live variable
            # buffer, which later in-place writes mutate retroactively.
            target = input_ids[0]
            if target in const_values:
                const_values[node.id] = const_values[target]
                stats.nodes_cse += 1
                continue
            if not state_dep.get(target, False):
                alias[node.id] = target
                stats.nodes_cse += 1
                continue
        if (node.inputs and node.op not in _NO_FOLD_OPS
                and all(i in const_values for i in input_ids)):
            try:
                value = spec.forward([const_values[i] for i in input_ids],
                                     node.attrs)
            except Exception:
                value = None
            if (value is not None
                    and getattr(np.asarray(value), "nbytes", 0)
                    <= _FOLD_SIZE_LIMIT):
                const_values[node.id] = value
                stats.nodes_folded += 1
                continue
        key = _cse_key(node, input_ids)
        if key is not None:
            canonical = cse_table.get(key)
            if (canonical is not None and canonical not in const_values
                    and (not state_dep[node.id]
                         or epoch[node.id] == epoch[canonical])):
                alias[node.id] = canonical
                stats.nodes_cse += 1
                continue
            cse_table[key] = node.id

    # -- pass 3: dead-node elimination --------------------------------------
    live: set = set()
    frontier = [resolve(f.id) for f in fetches]
    while frontier:
        node_id = frontier.pop()
        if node_id in live:
            continue
        live.add(node_id)
        if node_id in const_values:
            continue  # folded: its inputs are no longer needed at runtime
        node = nodes_by_id[node_id]
        frontier.extend(resolve(i.id) for i in node.inputs)
        frontier.extend(resolve(c.id) for c in node.control_inputs)
    live_plan = [n for n in plan
                 if n.id in live and n.id not in alias
                 and n.id not in const_values
                 and n.op not in ("const", "placeholder")]
    num_meta = sum(1 for n in plan if n.op in ("const", "placeholder"))
    stats.nodes_dead = (len(plan) - num_meta - stats.nodes_folded
                        - stats.nodes_cse - len(live_plan))

    # Placeholders that survive (must be fed at run time).
    live_placeholders = [n for n in plan
                         if n.op == "placeholder" and n.id in live]

    # -- pass 4: elementwise fusion -----------------------------------------
    # members[root-id] = topo-ordered node list executing as one kernel.
    # Only pure, single-consumer intermediates fuse: nothing outside the
    # group reads them, so delaying them to the root's schedule position
    # can never violate an ordering constraint.
    members: Dict[int, List[Node]] = {}
    if optimize in ("fused", "native"):
        consumers: Dict[int, int] = {}
        for node in live_plan:
            for inp in node.inputs:
                iid = resolve(inp.id)
                consumers[iid] = consumers.get(iid, 0) + 1
            for ctrl in node.control_inputs:
                # A control-dep target must keep its own schedule position.
                consumers[resolve(ctrl.id)] = 2
        for fid in fetch_ids:
            rid = resolve(fid)
            consumers[rid] = consumers.get(rid, 0) + 2

        for node in live_plan:
            if (node.op not in FUSABLE_OPS or node.stateful
                    or node.control_inputs):
                continue
            # Visit order is topological, so any absorbable producer
            # already roots a (possibly singleton) group in ``members``.
            # Distinct producer groups are mutually independent (their
            # internals are single-consumer), so concatenation is a valid
            # topological order for the merged group.
            group = [node]
            for inp in node.inputs:
                iid = resolve(inp.id)
                if consumers.get(iid, 0) != 1 or iid in const_values:
                    continue
                sub = members.get(iid)
                # Delaying a state-dependent member to this root's
                # schedule position must not cross a mutation barrier.
                if sub is not None and all(
                        not state_dep[m.id] or epoch[m.id] == epoch[node.id]
                        for m in sub):
                    group = sub + group
                    del members[iid]
            members[node.id] = group
        for root_id in [r for r, ms in members.items() if len(ms) < 2]:
            del members[root_id]
        for ms in members.values():
            stats.nodes_fused += len(ms)
            stats.fused_kernels += 1

    # -- pass 5: slot allocation + step emission ----------------------------
    fused_internal = {m.id for ms in members.values()
                      for m in ms[:-1]}  # all but the root
    schedule = [n for n in live_plan if n.id not in fused_internal]

    slot_of: Dict[int, int] = {}
    template: List[Any] = []

    def new_persistent_slot(value) -> int:
        template.append(value)
        return len(template) - 1

    # Constants (original + folded) that are still referenced load into
    # persistent template slots.
    needed_ids: set = set()
    for node in schedule:
        if node.id in members:
            for member in members[node.id]:
                needed_ids.update(resolve(i.id) for i in member.inputs)
        else:
            needed_ids.update(resolve(i.id) for i in node.inputs)
    needed_ids.update(resolve(f.id) for f in fetches)
    for node_id, value in const_values.items():
        if node_id in needed_ids and node_id not in alias:
            slot_of[node_id] = new_persistent_slot(value)

    feed_slots: List[Tuple[Node, int]] = []
    for ph in live_placeholders:
        slot = new_persistent_slot(None)
        slot_of[ph.id] = slot
        feed_slots.append((ph, slot))

    persistent = set(slot_of.values())
    resolved_fetch_ids = {resolve(f.id) for f in fetches}
    base_slots = len(template)

    # Liveness: last schedule index at which each produced value is read.
    last_use: Dict[int, int] = {}
    for index, node in enumerate(schedule):
        sources = (members[node.id] if node.id in members else [node])
        for member in sources:
            for inp in member.inputs:
                last_use[resolve(inp.id)] = index

    # -- pass 6 prep: memory planning (buffer donation) ---------------------
    # alias_safe[value-id]: every consumer of the value is guaranteed not
    # to let an alias of its buffer outlive the consuming step. A fused
    # group leaks an argument alias only through its root (member temps
    # die inside the kernel), so the group is safe iff its root
    # allocates fresh.
    alias_safe: Dict[int, bool] = {}
    for node in schedule:
        if node.id in members:
            group = members[node.id]
            internal = {m.id for m in group}
            ok = group[-1].op in _FRESH_OUTPUT_OPS
            arg_ids = [resolve(i.id) for m in group for i in m.inputs]
            arg_ids = [i for i in arg_ids if i not in internal]
        else:
            ok = node.op in _ALIAS_SAFE_CONSUMERS
            arg_ids = [resolve(i.id) for i in node.inputs]
        for iid in arg_ids:
            alias_safe[iid] = alias_safe.get(iid, True) and ok

    fresh_value: Dict[int, bool] = {}
    free_slots: List[int] = []
    steps: List[_Step] = []
    total_outputs = 0
    for index, node in enumerate(schedule):
        node_id = node.id
        if node.id in members:
            group = members[node.id]
            internal = {m.id for m in group}
            ext_ids: List[int] = []
            instructions = []
            local_of: Dict[int, int] = {}
            for j, member in enumerate(group):
                refs = []
                for inp in member.inputs:
                    iid = resolve(inp.id)
                    if iid in internal and iid in local_of:
                        refs.append(("local", local_of[iid]))
                    else:
                        if iid not in ext_ids:
                            ext_ids.append(iid)
                        refs.append(("arg", ext_ids.index(iid)))
                spec = OPS[member.op]
                instructions.append((member.op, spec.forward, member.attrs,
                                     refs))
                local_of[member.id] = j
            op = "fused"
            forward = kernels.build_fused_kernel(instructions)
            arg_slots = tuple(slot_of[i] for i in ext_ids)
            attrs: Dict[str, Any] = {}
            name = f"fused[{'+'.join(m.op for m in group)}]"
            fused_instructions = instructions
            result_op = group[-1].op
            candidate_ids = ext_ids
        else:
            spec = OPS.get(node.op)
            if spec is None:
                raise RLGraphError(
                    f"Unknown op {node.op!r} for node {node.name}")
            op = node.op
            forward = spec.forward
            arg_slots = tuple(slot_of[resolve(i.id)] for i in node.inputs)
            attrs = node.attrs
            name = node.name
            fused_instructions = None
            result_op = node.op
            candidate_ids = [resolve(i.id) for i in node.inputs]
        # Memory planning: donate a dying, fresh, alias-free input buffer
        # as the in-place output (runtime shape/dtype guard in the
        # driver keeps it exact across changing batch sizes).
        donate_slot = donate_fn = None
        out_fn = kernels.OUT_KERNELS.get(result_op)
        if out_fn is not None:
            for vid in candidate_ids:
                slot = slot_of.get(vid)
                if (slot is None or slot in persistent
                        or not fresh_value.get(vid)
                        or not alias_safe.get(vid, False)
                        or last_use.get(vid) != index):
                    continue
                donate_slot, donate_fn = slot, out_fn
                stats.buffers_donated += 1
                src = nodes_by_id.get(vid)
                if (src is not None and src.dtype is not None
                        and src.shape is not None
                        and all(d is not None for d in src.shape)):
                    stats.bytes_saved += int(
                        np.prod(src.shape, dtype=np.int64)
                        * np.dtype(src.dtype).itemsize)
                break
        fresh_value[node_id] = result_op in _FRESH_OUTPUT_OPS
        total_outputs += 1
        if free_slots:
            out_slot = free_slots.pop()
        else:
            template.append(None)
            out_slot = len(template) - 1
        slot_of[node_id] = out_slot
        if node_id in resolved_fetch_ids:
            persistent.add(out_slot)  # fetched values must survive the run
        steps.append(_Step(op, forward, attrs, arg_slots, out_slot, name,
                           instructions=fused_instructions,
                           donate_slot=donate_slot, donate_fn=donate_fn))
        # Free slots whose value was read for the last time at this step.
        for value_id, last in list(last_use.items()):
            if last == index:
                slot = slot_of.get(value_id)
                if slot is not None and slot not in persistent:
                    free_slots.append(slot)
                del last_use[value_id]

    fetch_slots = [slot_of[resolve(f.id)] for f in fetches]
    stats.num_steps = len(steps)
    stats.slab_slots = len(template)
    # Without liveness-based reuse every step output would get its own
    # slot; the difference is how much slab the allocator saved.
    stats.slab_slots_saved = total_outputs - (len(template) - base_slots)
    return CompiledPlan(steps, template, feed_slots, fetch_slots, stats)
