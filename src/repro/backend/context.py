"""Execution-mode context shared by the symbolic and eager backends.

The dispatcher in :mod:`repro.backend.functional` consults this module to
decide whether an op call should create a graph node ("symbolic" mode) or
compute immediately ("eager" mode). Graph functions are written once
against the dispatcher and run in either mode — the mechanism behind the
paper's unified static/define-by-run interface (§4.2).
"""

from __future__ import annotations

import contextlib
import threading

_state = threading.local()

SYMBOLIC = "symbolic"
EAGER = "eager"


def _stack():
    if not hasattr(_state, "mode_stack"):
        _state.mode_stack = [EAGER]
    return _state.mode_stack


def get_mode() -> str:
    """Current execution mode: ``"symbolic"`` or ``"eager"``."""
    return _stack()[-1]


def is_symbolic() -> bool:
    return get_mode() == SYMBOLIC


@contextlib.contextmanager
def mode(new_mode: str):
    """Temporarily switch the execution mode."""
    assert new_mode in (SYMBOLIC, EAGER), new_mode
    _stack().append(new_mode)
    try:
        yield
    finally:
        _stack().pop()


def symbolic_mode():
    return mode(SYMBOLIC)


def eager_mode():
    return mode(EAGER)


# -- gradient recording (eager) ---------------------------------------------
def _grad_stack():
    if not hasattr(_state, "grad_stack"):
        _state.grad_stack = [True]
    return _state.grad_stack


def grad_enabled() -> bool:
    return _grad_stack()[-1]


@contextlib.contextmanager
def no_grad():
    """Disable eager tape recording (used during backward passes and
    inference fast paths)."""
    _grad_stack().append(False)
    try:
        yield
    finally:
        _grad_stack().pop()


# -- current symbolic graph ---------------------------------------------------
def _graph_stack():
    if not hasattr(_state, "graph_stack"):
        _state.graph_stack = []
    return _state.graph_stack


def push_graph(graph):
    _graph_stack().append(graph)


def pop_graph():
    return _graph_stack().pop()


def current_graph():
    stack = _graph_stack()
    if not stack:
        from repro.backend.graph import Graph

        stack.append(Graph(name="default"))
    return stack[-1]


# -- optimize-level scope ------------------------------------------------------
def _optimize_stack():
    if not hasattr(_state, "optimize_stack"):
        _state.optimize_stack = [None]
    return _state.optimize_stack


@contextlib.contextmanager
def optimize_level(level: str):
    """Force a compiler optimize level for Sessions created in this
    scope (e.g. ``with context.optimize_level("native"): ...``) —
    ablation sweeps can retarget a whole agent build without threading
    the knob through every constructor. ``None`` (the default outside
    any scope) leaves each Session's own ``optimize`` argument in
    charge."""
    _optimize_stack().append(level)
    try:
        yield
    finally:
        _optimize_stack().pop()


def current_optimize_level():
    """The forced optimize level, or None outside any scope."""
    return _optimize_stack()[-1]


# -- device scope --------------------------------------------------------------
def _device_stack():
    if not hasattr(_state, "device_stack"):
        _state.device_stack = ["/sim:cpu:0"]
    return _state.device_stack


@contextlib.contextmanager
def device(name: str):
    """Annotate nodes created in this scope with a (simulated) device."""
    _device_stack().append(name)
    try:
        yield
    finally:
        _device_stack().pop()


def current_device() -> str:
    return _device_stack()[-1]
