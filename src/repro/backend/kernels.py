"""Pure-NumPy forward kernels shared by both backends.

Only kernels that need nontrivial implementations live here (convolution,
LSTM, one-hot). Elementwise and reduction ops call NumPy directly from the
op table in :mod:`repro.backend.ops`.

Layout conventions follow TensorFlow: images are NHWC, conv filters are
(KH, KW, Cin, Cout), LSTM inputs are time-major (T, B, D) to match the
paper's time-major space option.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


# ---------------------------------------------------------------------------
# Convolution (NHWC, via im2col)
# ---------------------------------------------------------------------------
def conv2d_output_size(in_size: int, k: int, stride: int, padding: str) -> int:
    if padding == "SAME":
        return -(-in_size // stride)  # ceil division
    return (in_size - k) // stride + 1


def _same_pad_amounts(in_size: int, k: int, stride: int):
    out = conv2d_output_size(in_size, k, stride, "SAME")
    total = max((out - 1) * stride + k - in_size, 0)
    return total // 2, total - total // 2


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: str) -> np.ndarray:
    """(N, H, W, C) -> (N, OH, OW, KH*KW*C) patch matrix."""
    n, h, w, c = x.shape
    if padding == "SAME":
        ph0, ph1 = _same_pad_amounts(h, kh, stride)
        pw0, pw1 = _same_pad_amounts(w, kw, stride)
        x = np.pad(x, ((0, 0), (ph0, ph1), (pw0, pw1), (0, 0)))
        h, w = x.shape[1], x.shape[2]
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, oh, ow, kh, kw, c),
        strides=(s0, s1 * stride, s2 * stride, s1, s2, s3),
        writeable=False,
    )
    return np.ascontiguousarray(patches).reshape(n, oh, ow, kh * kw * c)


def col2im(cols: np.ndarray, x_shape, kh: int, kw: int, stride: int,
           padding: str) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter patch grads back onto the image."""
    n, h, w, c = x_shape
    if padding == "SAME":
        ph0, ph1 = _same_pad_amounts(h, kh, stride)
        pw0, pw1 = _same_pad_amounts(w, kw, stride)
    else:
        ph0 = ph1 = pw0 = pw1 = 0
    hp, wp = h + ph0 + ph1, w + pw0 + pw1
    out = np.zeros((n, hp, wp, c), dtype=cols.dtype)
    oh = (hp - kh) // stride + 1
    ow = (wp - kw) // stride + 1
    cols6 = cols.reshape(n, oh, ow, kh, kw, c)
    for i in range(kh):
        for j in range(kw):
            out[:, i:i + stride * oh:stride, j:j + stride * ow:stride, :] += (
                cols6[:, :, :, i, j, :]
            )
    return out[:, ph0:hp - ph1 if ph1 else hp, pw0:wp - pw1 if pw1 else wp, :]


def conv2d_forward(x: np.ndarray, filters: np.ndarray, stride: int,
                   padding: str) -> np.ndarray:
    """NHWC conv. ``filters``: (KH, KW, Cin, Cout)."""
    kh, kw, cin, cout = filters.shape
    assert x.shape[-1] == cin, (x.shape, filters.shape)
    cols = im2col(x, kh, kw, stride, padding)  # (N, OH, OW, KH*KW*Cin)
    out = cols @ filters.reshape(-1, cout)
    return out


def conv2d_backward(grad: np.ndarray, x: np.ndarray, filters: np.ndarray,
                    stride: int, padding: str):
    kh, kw, cin, cout = filters.shape
    cols = im2col(x, kh, kw, stride, padding)
    n, oh, ow, _ = cols.shape
    grad2 = grad.reshape(-1, cout)
    dfilters = (cols.reshape(-1, kh * kw * cin).T @ grad2).reshape(filters.shape)
    dcols = (grad2 @ filters.reshape(-1, cout).T).reshape(n, oh, ow, kh * kw * cin)
    dx = col2im(dcols, x.shape, kh, kw, stride, padding)
    return dx, dfilters


# ---------------------------------------------------------------------------
# Fused LSTM (time-major) with manual BPTT
# ---------------------------------------------------------------------------
def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-x))


def lstm_forward(x: np.ndarray, w: np.ndarray, b: np.ndarray,
                 h0: np.ndarray, c0: np.ndarray):
    """Run an LSTM over a time-major sequence.

    Args:
        x: (T, B, D) inputs.
        w: (D + H, 4H) stacked kernel, gate order [i, f, g, o].
        b: (4H,) bias.
        h0, c0: (B, H) initial states.

    Returns:
        outputs (T, B, H), final (h, c), and a cache for backward.
    """
    t_steps, batch, _ = x.shape
    hidden = h0.shape[-1]
    outs = np.empty((t_steps, batch, hidden), dtype=np.float32)
    cache = []
    h, c = h0.astype(np.float32), c0.astype(np.float32)
    for t in range(t_steps):
        xh = np.concatenate([x[t], h], axis=1)
        gates = xh @ w + b
        i = _sigmoid(gates[:, :hidden])
        f = _sigmoid(gates[:, hidden:2 * hidden] + 1.0)  # forget bias 1.0
        g = np.tanh(gates[:, 2 * hidden:3 * hidden])
        o = _sigmoid(gates[:, 3 * hidden:])
        c_new = f * c + i * g
        tanh_c = np.tanh(c_new)
        h_new = o * tanh_c
        cache.append((xh, i, f, g, o, c, tanh_c))
        h, c = h_new, c_new
        outs[t] = h
    return outs, h, c, cache


def lstm_backward(grad_outs: np.ndarray, grad_h_final: np.ndarray,
                  grad_c_final: np.ndarray, x: np.ndarray, w: np.ndarray,
                  cache):
    """BPTT through :func:`lstm_forward`.

    Returns dx (T,B,D), dw, db, dh0, dc0.
    """
    t_steps, batch, dim = x.shape
    hidden = grad_outs.shape[-1]
    dw = np.zeros_like(w)
    db = np.zeros(4 * hidden, dtype=np.float32)
    dx = np.empty_like(x, dtype=np.float32)
    dh = grad_h_final.astype(np.float32).copy()
    dc = grad_c_final.astype(np.float32).copy()
    for t in range(t_steps - 1, -1, -1):
        xh, i, f, g, o, c_prev, tanh_c = cache[t]
        dh = dh + grad_outs[t]
        do = dh * tanh_c
        dc = dc + dh * o * (1.0 - tanh_c ** 2)
        di = dc * g
        dg = dc * i
        df = dc * c_prev
        dc = dc * f
        dgates = np.concatenate(
            [di * i * (1 - i), df * f * (1 - f), dg * (1 - g ** 2),
             do * o * (1 - o)], axis=1)
        dw += xh.T @ dgates
        db += dgates.sum(axis=0)
        dxh = dgates @ w.T
        dx[t] = dxh[:, :dim]
        dh = dxh[:, dim:]
    return dx, dw, db, dh, dc


# ---------------------------------------------------------------------------
# Misc kernels
# ---------------------------------------------------------------------------
def one_hot(indices: np.ndarray, depth: int, dtype=np.float32) -> np.ndarray:
    flat = np.asarray(indices).reshape(-1).astype(np.int64)
    out = np.zeros((flat.size, depth), dtype=dtype)
    valid = (flat >= 0) & (flat < depth)
    out[np.arange(flat.size)[valid], flat[valid]] = 1
    return out.reshape(np.asarray(indices).shape + (depth,))


def unbroadcast(grad: np.ndarray, target_shape) -> np.ndarray:
    """Reduce ``grad`` so its shape matches ``target_shape`` (reverse of
    NumPy broadcasting)."""
    grad = np.asarray(grad)
    if grad.shape == tuple(target_shape):
        return grad
    # Sum out prepended dims.
    while grad.ndim > len(target_shape):
        grad = grad.sum(axis=0)
    # Sum along broadcast (size-1) dims.
    for axis, size in enumerate(target_shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


# ---------------------------------------------------------------------------
# Multi-tensor fused optimizer kernels (flat-parameter learner path)
# ---------------------------------------------------------------------------
# Each kernel updates a whole parameter slab (and its slot slabs) in
# place from one flat gradient vector. Arithmetic mirrors the
# per-variable op chains in components/optimizers/optimizer.py constant
# for constant (python floats cast to float32 exactly like
# graph.constant does), so fused results are bitwise identical to the
# per-variable path — elementwise ops cannot mix elements across the
# concatenated segments.

def fused_sgd(grad: np.ndarray, params: np.ndarray, lr: float,
              momentum: float = 0.0,
              momentum_buf: Optional[np.ndarray] = None) -> None:
    g = np.asarray(grad, dtype=np.float32)
    if momentum:
        new_m = np.float32(momentum) * momentum_buf + g
        momentum_buf[...] = new_m
        params += np.float32(-lr) * new_m
    else:
        params += np.float32(-lr) * g


def fused_adam(grad: np.ndarray, t, params: np.ndarray, m: np.ndarray,
               v: np.ndarray, lr: float, beta1: float, beta2: float,
               epsilon: float) -> None:
    g = np.asarray(grad, dtype=np.float32)
    t = np.float32(t)
    new_m = np.float32(beta1) * m + np.float32(1.0 - beta1) * g
    new_v = np.float32(beta2) * v + np.float32(1.0 - beta2) * np.square(g)
    # beta^t via exp(t * log(beta)) — matches the per-variable graph.
    bc1 = np.float32(1.0) - np.exp(t * np.float32(np.log(beta1)))
    bc2 = np.float32(1.0) - np.exp(t * np.float32(np.log(beta2)))
    m_hat = new_m / np.maximum(bc1, np.float32(1e-8))
    v_hat = new_v / np.maximum(bc2, np.float32(1e-8))
    delta = np.float32(-lr) * (m_hat / (np.sqrt(v_hat) + np.float32(epsilon)))
    m[...] = new_m
    v[...] = new_v
    params += delta


def fused_rmsprop(grad: np.ndarray, params: np.ndarray, ms: np.ndarray,
                  lr: float, decay: float, epsilon: float) -> None:
    g = np.asarray(grad, dtype=np.float32)
    new_ms = np.float32(decay) * ms + np.float32(1.0 - decay) * np.square(g)
    delta = np.float32(-lr) * (g / (np.sqrt(new_ms) + np.float32(epsilon)))
    ms[...] = new_ms
    params += delta


# ---------------------------------------------------------------------------
# Out-form elementwise kernels (compiler memory planning)
# ---------------------------------------------------------------------------
# ``fn(args, attrs, out)`` variants that write the result into a donated
# buffer instead of allocating. Each one is arithmetic-identical to the
# registered forward in backend/ops.py — NumPy ufuncs compute the same
# result regardless of ``out`` — so donation preserves the compiler's
# bitwise-parity invariant. Only ops whose plain forward ALWAYS
# allocates a fresh array belong here (never view-returning ops).
def _sigmoid_out(i, a, out):
    np.negative(i[0], out=out)
    np.exp(out, out=out)
    np.add(out, 1.0, out=out)
    return np.true_divide(1.0, out, out=out)


def _relu_out(i, a, out):
    return np.maximum(i[0], 0, out=out)


def _cast_out(i, a, out):
    np.copyto(out, i[0], casting="unsafe")
    return out


def _ones_like_out(i, a, out):
    out.fill(1)
    return out


OUT_KERNELS = {
    "add": lambda i, a, out: np.add(i[0], i[1], out=out),
    "sub": lambda i, a, out: np.subtract(i[0], i[1], out=out),
    "mul": lambda i, a, out: np.multiply(i[0], i[1], out=out),
    "div": lambda i, a, out: np.true_divide(i[0], i[1], out=out),
    "mod": lambda i, a, out: np.mod(i[0], i[1], out=out),
    "power": lambda i, a, out: np.power(i[0], a["p"], out=out),
    "neg": lambda i, a, out: np.negative(i[0], out=out),
    "exp": lambda i, a, out: np.exp(i[0], out=out),
    "log": lambda i, a, out: np.log(i[0], out=out),
    "sqrt": lambda i, a, out: np.sqrt(i[0], out=out),
    "square": lambda i, a, out: np.square(i[0], out=out),
    "abs": lambda i, a, out: np.absolute(i[0], out=out),
    "sign": lambda i, a, out: np.sign(i[0], out=out),
    "floor": lambda i, a, out: np.floor(i[0], out=out),
    "maximum": lambda i, a, out: np.maximum(i[0], i[1], out=out),
    "minimum": lambda i, a, out: np.minimum(i[0], i[1], out=out),
    "clip": lambda i, a, out: np.clip(i[0], a["lo"], a["hi"], out=out),
    "relu": _relu_out,
    "tanh": lambda i, a, out: np.tanh(i[0], out=out),
    "sigmoid": _sigmoid_out,
    "softplus": lambda i, a, out: np.logaddexp(0.0, i[0], out=out),
    "atanh": lambda i, a, out: np.arctanh(i[0], out=out),
    "equal": lambda i, a, out: np.equal(i[0], i[1], out=out),
    "not_equal": lambda i, a, out: np.not_equal(i[0], i[1], out=out),
    "greater": lambda i, a, out: np.greater(i[0], i[1], out=out),
    "greater_equal": lambda i, a, out: np.greater_equal(i[0], i[1], out=out),
    "less": lambda i, a, out: np.less(i[0], i[1], out=out),
    "less_equal": lambda i, a, out: np.less_equal(i[0], i[1], out=out),
    "logical_and": lambda i, a, out: np.logical_and(i[0], i[1], out=out),
    "logical_or": lambda i, a, out: np.logical_or(i[0], i[1], out=out),
    "logical_not": lambda i, a, out: np.logical_not(i[0], out=out),
    "cast": _cast_out,
    "ones_like": _ones_like_out,
}


# ---------------------------------------------------------------------------
# Fused elementwise kernels (graph compiler)
# ---------------------------------------------------------------------------
def build_fused_kernel(instructions):
    """Compile a chain of elementwise ops into one Python function.

    ``instructions`` is a topologically ordered list of
    ``(op, forward, attrs, refs)`` tuples, where each ref is either
    ``("arg", k)`` — the k-th external input — or ``("local", j)`` — the
    output of instruction j. The generated function has the standard
    op-forward signature ``fn(args, attrs)`` and calls the *registered*
    forwards, so fused results are bitwise identical to unfused
    execution; the win is eliminating per-node executor dispatch and
    slab traffic for intermediates.
    """
    namespace = {}
    lines = []
    for j, (_op, forward, attrs, refs) in enumerate(instructions):
        namespace[f"_f{j}"] = forward
        namespace[f"_c{j}"] = attrs
        args = ", ".join(f"a[{k}]" if kind == "arg" else f"t{k}"
                         for kind, k in refs)
        lines.append(f"    t{j} = _f{j}([{args}], _c{j})")
    lines.append(f"    return t{len(instructions) - 1}")
    source = "def _fused(a, attrs):\n" + "\n".join(lines)
    exec(compile(source, "<fused-kernel>", "exec"), namespace)
    fused = namespace["_fused"]
    fused.num_ops = len(instructions)
    fused.ops = tuple(op for op, _, _, _ in instructions)
    return fused
