"""Session: executes symbolic-graph fetches with placeholder feeds.

The Session is the runtime half of the static-graph backend. It computes
and caches a topological *execution plan* per fetch-set (the paper's graph
executor batches "all relevant operations into a single session call", §1)
and, by default, lowers that plan through the graph compiler
(:mod:`repro.backend.compiler`): constant folding, CSE, dead-node
elimination, elementwise fusion, and a flat slot-based executor replace
the per-node dict walk. ``optimize="none"`` keeps the plain interpreter —
the paper-faithful ablation baseline. Control dependencies order
side-effecting nodes (assigns, scatters) relative to reads at every level.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import context
from repro.backend.compiler import OPTIMIZE_LEVELS, CompiledPlan, compile_plan
from repro.backend.graph import Graph, Node, Placeholder
from repro.backend.ops import OPS
from repro.utils.errors import RLGraphError


class SessionStats:
    """Lightweight profiling counters (run calls, wall time, plan cache,
    compiler pass results)."""

    def __init__(self):
        self.run_calls = 0
        self.total_time = 0.0
        self.plan_builds = 0
        self.nodes_executed = 0
        # Compiler counters (aggregated over all compiled fetch-sets).
        # ``compile_time`` covers the graph-compiler passes only; the
        # native backend's C build is tracked separately below so the
        # compile-vs-run breakdown stays honest.
        self.compile_time = 0.0
        self.plans_compiled = 0
        self.nodes_folded = 0
        self.nodes_cse = 0
        self.nodes_dead = 0
        self.nodes_fused = 0
        self.fused_kernels = 0
        self.slab_slots = 0
        self.slab_slots_saved = 0
        # Memory planning (buffer donation).
        self.buffers_donated = 0
        self.bytes_saved = 0
        # Native codegen backend: C emit+compile wall time, shared-lib
        # disk-cache hits, and lowering results (filled in lazily at
        # first run of each native plan — the probe needs feed values).
        self.native_compile_time = 0.0
        self.native_cache_hits = 0
        self.plans_native = 0
        self.native_segments = 0
        self.native_steps = 0
        self.native_py_steps = 0

    def as_dict(self):
        return {
            "run_calls": self.run_calls,
            "total_time": self.total_time,
            "plan_builds": self.plan_builds,
            "nodes_executed": self.nodes_executed,
            "compile_time": self.compile_time,
            "plans_compiled": self.plans_compiled,
            "nodes_folded": self.nodes_folded,
            "nodes_cse": self.nodes_cse,
            "nodes_dead": self.nodes_dead,
            "nodes_fused": self.nodes_fused,
            "fused_kernels": self.fused_kernels,
            "slab_slots": self.slab_slots,
            "slab_slots_saved": self.slab_slots_saved,
            "buffers_donated": self.buffers_donated,
            "bytes_saved": self.bytes_saved,
            "native_compile_time": self.native_compile_time,
            "native_cache_hits": self.native_cache_hits,
            "plans_native": self.plans_native,
            "native_segments": self.native_segments,
            "native_steps": self.native_steps,
            "native_py_steps": self.native_py_steps,
        }

    def reset(self):
        self.__init__()


class Session:
    """Evaluates fetches against a :class:`~repro.backend.graph.Graph`.

    Args:
        graph: the graph to execute.
        cache_plans: keep the (compiled) plan per fetch-set. Disabling
            this is the E-ablation showing per-call planning cost.
        optimize: ``"none"`` replays the topological plan node by node
            (the seed behavior and the paper-faithful executor ablation),
            ``"basic"`` adds constant folding + CSE + dead-node
            elimination with the slot executor plus buffer donation,
            ``"fused"`` (default) additionally fuses elementwise chains
            into single kernels, ``"native"`` lowers the fused plan to C
            segments (:mod:`repro.backend.native`) executed with zero
            Python dispatch — degrading gracefully to ``"fused"`` with a
            one-time warning when no C toolchain is present. A
            ``context.optimize_level(...)`` scope overrides this
            argument for ablation sweeps.
    """

    def __init__(self, graph: Graph, cache_plans: bool = True,
                 optimize: str = "fused"):
        forced = context.current_optimize_level()
        if forced is not None:
            optimize = forced
        if optimize not in OPTIMIZE_LEVELS:
            raise RLGraphError(
                f"Unknown optimize level {optimize!r}; use one of "
                f"{OPTIMIZE_LEVELS}")
        self.graph = graph
        self.cache_plans = cache_plans
        self.optimize = optimize
        self._plans: Dict[Tuple[int, ...], List[Node]] = {}
        self._compiled: Dict[Tuple[int, ...], CompiledPlan] = {}
        self.stats = SessionStats()

    # -- plan construction --------------------------------------------------
    def _build_plan(self, fetches: Sequence[Node]) -> List[Node]:
        """Topological order over data + control dependencies."""
        order: List[Node] = []
        state: Dict[int, int] = {}  # 0=visiting, 1=done

        def visit(node: Node):
            st = state.get(node.id)
            if st == 1:
                return
            if st == 0:
                raise RLGraphError(f"Cycle detected at node {node.name}")
            state[node.id] = 0
            for dep in node.inputs:
                visit(dep)
            for dep in node.control_inputs:
                visit(dep)
            state[node.id] = 1
            order.append(node)

        for f in fetches:
            visit(f)
        self.stats.plan_builds += 1
        return order

    def _get_plan(self, fetches: Sequence[Node]) -> List[Node]:
        if not self.cache_plans:
            return self._build_plan(fetches)
        key = tuple(f.id for f in fetches)
        plan = self._plans.get(key)
        if plan is None:
            plan = self._build_plan(fetches)
            self._plans[key] = plan
        return plan

    def _get_compiled(self, fetches: Sequence[Node]) -> CompiledPlan:
        key = tuple(f.id for f in fetches)
        compiled = self._compiled.get(key) if self.cache_plans else None
        if compiled is None:
            plan = self._get_plan(fetches)
            t0 = time.perf_counter()
            compiled = compile_plan(plan, fetches, optimize=self.optimize)
            self.stats.compile_time += time.perf_counter() - t0
            self.stats.plans_compiled += 1
            cs = compiled.stats
            self.stats.nodes_folded += cs.nodes_folded
            self.stats.nodes_cse += cs.nodes_cse
            self.stats.nodes_dead += cs.nodes_dead
            self.stats.nodes_fused += cs.nodes_fused
            self.stats.fused_kernels += cs.fused_kernels
            self.stats.slab_slots += cs.slab_slots
            self.stats.slab_slots_saved += cs.slab_slots_saved
            self.stats.buffers_donated += cs.buffers_donated
            self.stats.bytes_saved += cs.bytes_saved
            if self.optimize == "native":
                from repro.backend import native
                if native.toolchain_available():
                    compiled = native.NativePlan(compiled,
                                                 session_stats=self.stats)
                else:
                    native.warn_no_toolchain()
            if self.cache_plans:
                self._compiled[key] = compiled
        return compiled

    # -- execution ------------------------------------------------------------
    def run(self, fetches, feed_dict: Optional[Dict[Node, Any]] = None):
        """Evaluate ``fetches`` (a Node or a list/tuple of Nodes).

        Returns a single value for a single fetch, else a list of values.
        """
        t0 = time.perf_counter()
        single = isinstance(fetches, Node)
        fetch_list: List[Node] = [fetches] if single else list(fetches)
        for f in fetch_list:
            if not isinstance(f, Node):
                raise RLGraphError(f"Fetch {f!r} is not a graph Node")

        values: Dict[int, Any] = {}
        if feed_dict:
            for ph, val in feed_dict.items():
                if not isinstance(ph, Placeholder):
                    raise RLGraphError(f"feed_dict key {ph!r} is not a Placeholder")
                arr = np.asarray(val)
                if ph.dtype is not None and arr.dtype != ph.dtype:
                    arr = arr.astype(ph.dtype)
                values[ph.id] = arr

        if self.optimize == "none":
            plan = self._get_plan(fetch_list)
            for node in plan:
                if node.id in values:
                    continue
                self._execute_node(node, values)
            results = [values[f.id] for f in fetch_list]
            self.stats.nodes_executed += len(plan)
        else:
            compiled = self._get_compiled(fetch_list)
            results = compiled.run(values)
            self.stats.nodes_executed += compiled.stats.num_steps

        self.stats.run_calls += 1
        self.stats.total_time += time.perf_counter() - t0
        return results[0] if single else results

    def _execute_node(self, node: Node, values: Dict[int, Any]):
        op = node.op
        if op == "placeholder":
            raise RLGraphError(
                f"Placeholder {node.name} was not fed (shape {node.shape})")
        if op == "const":
            values[node.id] = node.attrs["value"]
            return
        spec = OPS.get(op)
        if spec is None:
            raise RLGraphError(f"Unknown op {op!r} for node {node.name}")
        args = [values[i.id] for i in node.inputs]
        values[node.id] = spec.forward(args, node.attrs)

    # -- convenience -------------------------------------------------------------
    def warm_up(self, fetches, feed_dict=None):
        """Build (and cache) the plan — and its compiled form — without
        counting it as a run."""
        fetch_list = [fetches] if isinstance(fetches, Node) else list(fetches)
        self._get_plan(fetch_list)
        if self.optimize != "none":
            self._get_compiled(fetch_list)

    def plan_size(self, fetches) -> int:
        plan = self._get_plan([fetches] if isinstance(fetches, Node)
                              else list(fetches))
        return len(plan)

    def compiled_plan(self, fetches) -> Optional[CompiledPlan]:
        """The compiled plan for a fetch-set (None at ``optimize='none'``)."""
        if self.optimize == "none":
            return None
        return self._get_compiled([fetches] if isinstance(fetches, Node)
                                  else list(fetches))
