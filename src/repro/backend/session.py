"""Session: executes symbolic-graph fetches with placeholder feeds.

The Session is the runtime half of the static-graph backend. It computes
and caches a topological *execution plan* per fetch-set (the paper's graph
executor batches "all relevant operations into a single session call", §1),
then evaluates the plan with a per-run value table. Control dependencies
order side-effecting nodes (assigns, scatters) relative to reads.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend.graph import Graph, Node, Placeholder
from repro.backend.ops import OPS
from repro.utils.errors import RLGraphError


class SessionStats:
    """Lightweight profiling counters (run calls, wall time, plan cache)."""

    def __init__(self):
        self.run_calls = 0
        self.total_time = 0.0
        self.plan_builds = 0
        self.nodes_executed = 0

    def as_dict(self):
        return {
            "run_calls": self.run_calls,
            "total_time": self.total_time,
            "plan_builds": self.plan_builds,
            "nodes_executed": self.nodes_executed,
        }

    def reset(self):
        self.__init__()


class Session:
    """Evaluates fetches against a :class:`~repro.backend.graph.Graph`.

    Args:
        graph: the graph to execute.
        cache_plans: keep the topological plan per fetch-set. Disabling
            this is the E-ablation showing per-call planning cost.
    """

    def __init__(self, graph: Graph, cache_plans: bool = True):
        self.graph = graph
        self.cache_plans = cache_plans
        self._plans: Dict[Tuple[int, ...], List[Node]] = {}
        self.stats = SessionStats()

    # -- plan construction --------------------------------------------------
    def _build_plan(self, fetches: Sequence[Node]) -> List[Node]:
        """Topological order over data + control dependencies."""
        order: List[Node] = []
        state: Dict[int, int] = {}  # 0=visiting, 1=done

        def visit(node: Node):
            st = state.get(node.id)
            if st == 1:
                return
            if st == 0:
                raise RLGraphError(f"Cycle detected at node {node.name}")
            state[node.id] = 0
            for dep in node.inputs:
                visit(dep)
            for dep in node.control_inputs:
                visit(dep)
            state[node.id] = 1
            order.append(node)

        for f in fetches:
            visit(f)
        self.stats.plan_builds += 1
        return order

    def _get_plan(self, fetches: Sequence[Node]) -> List[Node]:
        if not self.cache_plans:
            return self._build_plan(fetches)
        key = tuple(f.id for f in fetches)
        plan = self._plans.get(key)
        if plan is None:
            plan = self._build_plan(fetches)
            self._plans[key] = plan
        return plan

    # -- execution ------------------------------------------------------------
    def run(self, fetches, feed_dict: Optional[Dict[Node, Any]] = None):
        """Evaluate ``fetches`` (a Node or a list/tuple of Nodes).

        Returns a single value for a single fetch, else a list of values.
        """
        t0 = time.perf_counter()
        single = isinstance(fetches, Node)
        fetch_list: List[Node] = [fetches] if single else list(fetches)
        for f in fetch_list:
            if not isinstance(f, Node):
                raise RLGraphError(f"Fetch {f!r} is not a graph Node")

        values: Dict[int, Any] = {}
        if feed_dict:
            for ph, val in feed_dict.items():
                if not isinstance(ph, Placeholder):
                    raise RLGraphError(f"feed_dict key {ph!r} is not a Placeholder")
                arr = np.asarray(val)
                if ph.dtype is not None and arr.dtype != ph.dtype:
                    arr = arr.astype(ph.dtype)
                values[ph.id] = arr

        plan = self._get_plan(fetch_list)
        for node in plan:
            if node.id in values:
                continue
            self._execute_node(node, values)

        self.stats.run_calls += 1
        self.stats.nodes_executed += len(plan)
        self.stats.total_time += time.perf_counter() - t0
        results = [values[f.id] for f in fetch_list]
        return results[0] if single else results

    def _execute_node(self, node: Node, values: Dict[int, Any]):
        op = node.op
        if op == "placeholder":
            raise RLGraphError(
                f"Placeholder {node.name} was not fed (shape {node.shape})")
        if op == "const":
            values[node.id] = node.attrs["value"]
            return
        spec = OPS.get(op)
        if spec is None:
            raise RLGraphError(f"Unknown op {op!r} for node {node.name}")
        args = [values[i.id] for i in node.inputs]
        values[node.id] = spec.forward(args, node.attrs)

    # -- convenience -------------------------------------------------------------
    def warm_up(self, fetches, feed_dict=None):
        """Build (and cache) the plan without counting it as a run."""
        self._get_plan([fetches] if isinstance(fetches, Node) else list(fetches))

    def plan_size(self, fetches) -> int:
        plan = self._get_plan([fetches] if isinstance(fetches, Node)
                              else list(fetches))
        return len(plan)
