"""Reverse-mode autodiff over the symbolic graph.

``gradients(ys, xs)`` constructs *new graph nodes* computing d(sum ys)/dx
for each x, by replaying each op's shared gradient rule in symbolic mode.
This is what optimizer components call during the build phase to create
their update operations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.backend import context
from repro.backend import functional as F
from repro.backend.graph import Node
from repro.backend.ops import OPS
from repro.utils.errors import RLGraphError


def _ancestors(roots: Sequence[Node]):
    """All nodes reachable from ``roots`` through data inputs."""
    seen = {}
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node.id in seen:
            continue
        seen[node.id] = node
        stack.extend(node.inputs)
    return seen


def _topo_order(roots: Sequence[Node]) -> List[Node]:
    order: List[Node] = []
    visited = set()

    def visit(node: Node):
        if node.id in visited:
            return
        visited.add(node.id)
        for inp in node.inputs:
            visit(inp)
        order.append(node)

    for r in roots:
        visit(r)
    return order


def gradients(ys, xs, grad_ys=None) -> List[Optional[Node]]:
    """Symbolic gradients of ``sum(ys)`` with respect to each x in ``xs``.

    Args:
        ys: output node or list of output nodes (typically a scalar loss).
        xs: nodes to differentiate against (typically variable reads).
        grad_ys: optional incoming gradients per y (defaults to ones).

    Returns:
        One node (or ``None`` if unreachable) per x.
    """
    if not context.is_symbolic():
        raise RLGraphError("gradients() requires symbolic mode")
    ys = [ys] if isinstance(ys, Node) else list(ys)
    xs = list(xs)
    if grad_ys is None:
        grad_ys = [None] * len(ys)

    # Restrict the backward sweep to nodes that actually connect ys to xs.
    on_y_path = _ancestors(ys)
    x_ids = {x.id for x in xs}

    reaches_x: Dict[int, bool] = {}

    def _reaches(node: Node) -> bool:
        cached = reaches_x.get(node.id)
        if cached is not None:
            return cached
        reaches_x[node.id] = False  # cycle guard (graphs are acyclic anyway)
        result = node.id in x_ids or any(_reaches(i) for i in node.inputs)
        reaches_x[node.id] = result
        return result

    grads: Dict[int, Node] = {}
    for y, gy in zip(ys, grad_ys):
        if gy is None:
            shape = y.shape
            if shape is not None and None not in shape:
                gy = context.current_graph().constant(
                    np.ones(shape, dtype=np.float32))
            else:
                gy = F.broadcast_like(1.0, y)
        if y.id in grads:
            grads[y.id] = F.add(grads[y.id], gy)
        else:
            grads[y.id] = gy

    order = _topo_order(ys)
    for node in reversed(order):
        g = grads.get(node.id)
        if g is None or node.id in x_ids:
            continue
        spec = OPS.get(node.op)
        if spec is None or spec.grad is None:
            continue
        if not _reaches(node):
            continue
        input_grads = spec.grad(node.inputs, node, g, node.attrs)
        for inp, ig in zip(node.inputs, input_grads):
            if ig is None or inp.id not in on_y_path and inp.id not in x_ids:
                if ig is None:
                    continue
            if not _reaches(inp):
                continue
            if inp.id in grads:
                grads[inp.id] = F.add(grads[inp.id], ig)
            else:
                grads[inp.id] = ig if isinstance(ig, Node) else F.identity(ig)

    return [grads.get(x.id) for x in xs]


def grads_of(loss, variables):
    """Mode-agnostic gradients of ``loss`` w.r.t. Variable objects.

    In symbolic mode this builds gradient nodes (zeros constants for
    unreachable variables); in eager mode it runs a backward pass and
    returns NumPy arrays. Written for use inside optimizer graph
    functions, which therefore work unchanged on both backends.
    """
    from repro.backend.eager import ETensor, collect_leaf_grads

    if context.is_symbolic():
        reads = [v.read() for v in variables]
        grads = gradients(loss, reads)
        graph = context.current_graph()
        return [
            g if g is not None else graph.constant(
                np.zeros(v.shape, dtype=np.float32))
            for g, v in zip(grads, variables)
        ]
    leaves = [v.read() for v in variables]
    if not isinstance(loss, ETensor):
        return [np.zeros(v.shape, dtype=np.float32) for v in variables]
    return collect_leaf_grads(loss, leaves)
