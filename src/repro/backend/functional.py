"""Public functional API (``F``) used inside graph functions.

Each function dispatches through :func:`repro.backend.ops.apply_op`, so the
same graph-function code builds symbolic nodes during a static-graph build
and computes immediately in define-by-run mode (paper §4.2).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.backend import context
from repro.backend.eager import ETensor, raw
from repro.backend.graph import Node
from repro.backend.ops import OPS, apply_op, handle_shape


def _op(name, inputs, attrs=None):
    return apply_op(OPS[name], inputs, attrs)


# -- arithmetic ----------------------------------------------------------------
def add(x, y):
    return _op("add", [x, y])


def sub(x, y):
    return _op("sub", [x, y])


def mul(x, y):
    return _op("mul", [x, y])


def div(x, y):
    return _op("div", [x, y])


def neg(x):
    return _op("neg", [x])


def mod(x, y):
    return _op("mod", [x, y])


def power(x, p):
    return _op("power", [x], {"p": float(p)})


def exp(x):
    return _op("exp", [x])


def log(x):
    return _op("log", [x])


def sqrt(x):
    return _op("sqrt", [x])


def square(x):
    return _op("square", [x])


def abs(x):  # noqa: A001 - mirrors np.abs naming
    return _op("abs", [x])


def sign(x):
    return _op("sign", [x])


def floor(x):
    return _op("floor", [x])


def maximum(x, y):
    return _op("maximum", [x, y])


def minimum(x, y):
    return _op("minimum", [x, y])


def clip(x, lo, hi):
    return _op("clip", [x], {"lo": float(lo), "hi": float(hi)})


# -- activations -----------------------------------------------------------------
def relu(x):
    return _op("relu", [x])


def tanh(x):
    return _op("tanh", [x])


def sigmoid(x):
    return _op("sigmoid", [x])


def softplus(x):
    return _op("softplus", [x])


def atanh(x):
    return _op("atanh", [x])


# -- comparisons ------------------------------------------------------------------
def equal(x, y):
    return _op("equal", [x, y])


def not_equal(x, y):
    return _op("not_equal", [x, y])


def greater(x, y):
    return _op("greater", [x, y])


def greater_equal(x, y):
    return _op("greater_equal", [x, y])


def less(x, y):
    return _op("less", [x, y])


def less_equal(x, y):
    return _op("less_equal", [x, y])


def logical_and(x, y):
    return _op("logical_and", [x, y])


def logical_or(x, y):
    return _op("logical_or", [x, y])


def logical_not(x):
    return _op("logical_not", [x])


def cast(x, dtype):
    return _op("cast", [x], {"dtype": np.dtype(dtype)})


# -- linear algebra / reductions -----------------------------------------------
def matmul(x, y):
    return _op("matmul", [x, y])


def reduce_sum(x, axis=None, keepdims=False):
    return _op("reduce_sum", [x], {"axis": axis, "keepdims": keepdims})


def reduce_mean(x, axis=None, keepdims=False):
    return _op("reduce_mean", [x], {"axis": axis, "keepdims": keepdims})


def reduce_max(x, axis=None, keepdims=False):
    return _op("reduce_max", [x], {"axis": axis, "keepdims": keepdims})


def reduce_min(x, axis=None, keepdims=False):
    return _op("reduce_min", [x], {"axis": axis, "keepdims": keepdims})


def argmax(x, axis=None):
    return _op("argmax", [x], {"axis": axis})


def cumsum(x, axis=-1):
    return _op("cumsum", [x], {"axis": axis})


def flip(x, axis):
    return _op("flip", [x], {"axis": axis})


# -- shape ops --------------------------------------------------------------------
def reshape(x, newshape):
    return _op("reshape", [x], {"newshape": tuple(newshape)})


def reshape_like(x, ref):
    return _op("reshape_like", [x, ref])


def transpose(x, perm):
    return _op("transpose", [x], {"perm": tuple(perm)})


def expand_dims(x, axis):
    return _op("expand_dims", [x], {"axis": axis})


def squeeze(x, axis=None):
    return _op("squeeze", [x], {"axis": axis})


def concat(values: Sequence, axis=0):
    return _op("concat", list(values), {"axis": axis})


def concat_slice(g, *parts, index, axis):
    return _op("concat_slice", [g, *parts], {"index": index, "axis": axis})


def stack(values: Sequence, axis=0):
    return _op("stack", list(values), {"axis": axis})


def take_index(x, index, axis=0):
    return _op("take_index", [x], {"index": index, "axis": axis})


def getitem(x, idx):
    return _op("getitem", [x], {"idx": idx})


def getitem_grad(g, x, idx):
    return _op("getitem_grad", [g, x], {"idx": idx})


def gather(params, indices):
    """Select rows (axis 0) of ``params`` by integer ``indices``."""
    return _op("gather", [params, indices])


def gather_grad(g, params, indices):
    return _op("gather_grad", [g, params, indices])


def one_hot(indices, depth: int):
    return _op("one_hot", [indices], {"depth": int(depth)})


def where(cond, x, y):
    return _op("where", [cond, x, y])


def identity(x):
    return _op("identity", [x])


def ones_like(x, dtype=np.float32):
    """Ones with the runtime shape of ``x`` (one cheap kernel, and the
    compiler constant-folds it when ``x`` has a constant shape)."""
    return _op("ones_like", [x], {"dtype": np.dtype(dtype)})


def anchor(x, *deps):
    """Pass ``x`` through while data-depending on ``deps``. The graph
    compiler elides the node entirely; the interpreter forwards ``x``."""
    return _op("anchor", [x, *deps])


def flatcat(handles: Sequence):
    """Coalesce tensors into one flat float32 vector — a single graph
    node regardless of the number of inputs (fused optimizer path)."""
    return _op("flatcat", list(handles))


def stop_gradient(x):
    return _op("stop_gradient", [x])


def tile(x, reps):
    return _op("tile", [x], {"reps": tuple(reps)})


def shape_of(x):
    """Runtime shape as an int64 vector."""
    return _op("shape_of", [x])


def size_of(x):
    return _op("size_of", [x])


def dyn_arange(n):
    """``np.arange`` with a runtime scalar bound."""
    return _op("dyn_arange", [n])


def searchsorted(sorted_seq, values, side="left"):
    return _op("searchsorted", [sorted_seq, values], {"side": side})


# -- backward helpers --------------------------------------------------------------
def unbroadcast_like(g, ref):
    g_shape, r_shape = handle_shape(g), handle_shape(ref)
    if (g_shape is not None and r_shape is not None
            and None not in g_shape and None not in r_shape
            and tuple(g_shape) == tuple(r_shape)):
        return g
    return _op("unbroadcast_like_op", [g, ref])


def broadcast_like(g, ref, axis=None, keepdims=False):
    return _op("broadcast_like", [g, ref], {"axis": axis, "keepdims": keepdims})


# -- nn ------------------------------------------------------------------------------
def conv2d(x, filters, stride=1, padding="VALID"):
    return _op("conv2d", [x, filters], {"stride": int(stride),
                                        "padding": padding})


def conv2d_grad_input(g, x, filters, stride, padding):
    return _op("conv2d_grad_input", [g, x, filters],
               {"stride": stride, "padding": padding})


def conv2d_grad_filters(g, x, filters, stride, padding):
    return _op("conv2d_grad_filters", [g, x, filters],
               {"stride": stride, "padding": padding})


def lstm_seq(x, w, b, h0, c0):
    """Time-major LSTM returning the full (T, B, H) output sequence."""
    return _op("lstm_seq", [x, w, b, h0, c0])


def lstm_final_c(x, w, b, h0, c0):
    """Final cell state (no gradient; used to carry state across rollouts)."""
    return _op("lstm_final_c", [x, w, b, h0, c0])


def lstm_grad(g, x, w, b, h0, c0, which: int):
    return _op("lstm_grad", [g, x, w, b, h0, c0], {"which": which})


# -- random -------------------------------------------------------------------------
_eager_seed_counter = [0]


def _seed():
    if context.is_symbolic():
        return context.current_graph().next_op_seed()
    _eager_seed_counter[0] += 1
    return _eager_seed_counter[0] * 7919 + 13


def random_uniform(shape=None, low=0.0, high=1.0, like=None, ref_rank=None,
                   seed=None):
    attrs = {"low": float(low), "high": float(high),
             "seed": seed if seed is not None else _seed()}
    if like is not None:
        attrs["ref_rank"] = ref_rank
        return _op("random_uniform", [like], attrs)
    attrs["shape"] = tuple(shape)
    return _op("random_uniform", [], attrs)


def random_normal(shape=None, mean=0.0, stddev=1.0, like=None, seed=None):
    attrs = {"mean": float(mean), "stddev": float(stddev),
             "seed": seed if seed is not None else _seed()}
    if like is not None:
        return _op("random_normal", [like], attrs)
    attrs["shape"] = tuple(shape)
    return _op("random_normal", [], attrs)


def vtrace(log_rhos, discounts, rewards, values, bootstrap_value,
           clip_rho_threshold=1.0, clip_pg_rho_threshold=1.0):
    """V-trace targets: returns (vs, pg_advantages), both stop-gradient."""
    attrs = {"clip_rho_threshold": clip_rho_threshold,
             "clip_pg_rho_threshold": clip_pg_rho_threshold}
    vs = _op("vtrace", [log_rhos, discounts, rewards, values, bootstrap_value],
             {**attrs, "which": 0})
    pg_adv = _op("vtrace", [log_rhos, discounts, rewards, values,
                            bootstrap_value], {**attrs, "which": 1})
    return vs, pg_adv


def zeros2d(n, cols: int):
    """A (n, cols) float32 zero matrix with runtime row count."""
    return _op("zeros2d", [n], {"cols": int(cols)})


# -- fused optimizer updates (flat-parameter learner path) --------------------
def fused_sgd(flat_grad, var, lr, momentum=0.0, momentum_var=None):
    """In-place SGD over a whole parameter slab: one stateful node."""
    return _op("fused_sgd", [flat_grad],
               {"var": var, "lr": float(lr), "momentum": float(momentum),
                "momentum_var": momentum_var})


def fused_adam(flat_grad, t, var, m, v, lr, beta1, beta2, epsilon):
    """In-place Adam over a whole parameter slab: one stateful node."""
    return _op("fused_adam", [flat_grad, t],
               {"var": var, "m": m, "v": v, "lr": float(lr),
                "beta1": float(beta1), "beta2": float(beta2),
                "epsilon": float(epsilon)})


def fused_rmsprop(flat_grad, var, ms, lr, decay, epsilon):
    """In-place RMSProp over a whole parameter slab: one stateful node."""
    return _op("fused_rmsprop", [flat_grad],
               {"var": var, "ms": ms, "lr": float(lr), "decay": float(decay),
                "epsilon": float(epsilon)})


def py_func(fn, inputs=(), shape=None, dtype=None):
    """Wrap an arbitrary Python callable as a stateful op (TF py_func)."""
    return _op("py_func", list(inputs), {"fn": fn, "shape": shape,
                                         "dtype": dtype})


# -- composites ------------------------------------------------------------------------
def softmax(x, axis=-1):
    shifted = sub(x, stop_gradient(reduce_max(x, axis=axis, keepdims=True)))
    e = exp(shifted)
    return div(e, reduce_sum(e, axis=axis, keepdims=True))


def log_softmax(x, axis=-1):
    shifted = sub(x, stop_gradient(reduce_max(x, axis=axis, keepdims=True)))
    return sub(shifted, log(reduce_sum(exp(shifted), axis=axis, keepdims=True)))


def logsumexp(x, axis=None, keepdims=False):
    m = stop_gradient(reduce_max(x, axis=axis, keepdims=True))
    out = add(log(reduce_sum(exp(sub(x, m)), axis=axis, keepdims=True)), m)
    if not keepdims:
        out = squeeze(out, axis=axis) if axis is not None else reshape(out, ())
    return out


def huber_loss(x, delta: float = 1.0):
    """Elementwise Huber: 0.5 x^2 for |x| <= delta, linear beyond."""
    abs_x = abs(x)
    quadratic = mul(0.5, square(x))
    linear = mul(delta, sub(abs_x, 0.5 * delta))
    return where(less_equal(abs_x, delta), quadratic, linear)


def l2_loss(x):
    return mul(0.5, reduce_sum(square(x)))


def flatten_batch(x):
    """Collapse all but the leading (batch) dim: (B, ...) -> (B, prod)."""
    shape = handle_shape(x)
    if shape is None or None in shape[1:]:
        raise TypeError(f"flatten_batch needs known trailing dims, got {shape}")
    flat = int(np.prod(shape[1:])) if len(shape) > 1 else 1
    return reshape(x, (-1, flat))


def group(*deps):
    """Bundle side-effect handles into one op (symbolic) / no-op (eager)."""
    if context.is_symbolic():
        node = identity(0.0)
        node.with_deps(*[d for d in deps if isinstance(d, Node)])
        return node
    return None


def with_deps(value, *deps):
    """Force ``deps`` to execute before ``value`` (symbolic only)."""
    if context.is_symbolic():
        if not isinstance(value, Node):
            value = identity(value)
        else:
            value = identity(value)
        value.with_deps(*[d for d in deps if isinstance(d, Node)])
        return value
    return value


def to_numpy(x):
    """Eager-mode value extraction (raises in symbolic mode)."""
    if isinstance(x, Node):
        raise TypeError("to_numpy called on a symbolic Node; run a Session")
    return raw(x)
