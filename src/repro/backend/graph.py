"""Symbolic computation graph: nodes, placeholders, constants.

This is the static-graph substrate standing in for TensorFlow: the
component-graph build (paper §3.3 phase 3) creates these nodes inside
graph functions, and a :class:`~repro.backend.session.Session` later
executes fetches with placeholder feeds.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import context
from repro.utils.errors import RLGraphError
from repro.utils.seeding import SeedStream


class Node:
    """One operation (or placeholder/constant/variable-read) in the graph.

    Nodes are single-output. ``shape`` may contain ``None`` for unknown
    (batch/time) dims or be ``None`` entirely when inference gave up —
    shape is advisory; authoritative typing lives in Space objects.
    """

    __slots__ = ("graph", "id", "op", "inputs", "attrs", "shape", "dtype",
                 "control_inputs", "device", "name", "stateful")

    def __init__(self, graph: "Graph", op: str, inputs: Sequence["Node"],
                 attrs: Optional[Dict[str, Any]] = None, shape=None, dtype=None,
                 name: str = "", stateful: bool = False):
        self.graph = graph
        self.id = graph._next_id()
        self.op = op
        self.inputs = list(inputs)
        self.attrs = attrs or {}
        self.shape = shape
        self.dtype = dtype
        self.control_inputs: List[Node] = []
        self.device = context.current_device()
        self.name = name or f"{op}_{self.id}"
        self.stateful = stateful
        graph.nodes.append(self)

    def with_deps(self, *deps: "Node") -> "Node":
        """Add control dependencies (must execute before this node)."""
        self.control_inputs.extend(d for d in deps if d is not None)
        return self

    @property
    def batch_dim_unknown(self) -> bool:
        return self.shape is not None and len(self.shape) > 0 and self.shape[0] is None

    def __repr__(self):
        return f"<Node {self.name} op={self.op} shape={self.shape} dev={self.device}>"

    # Allow natural operator syntax inside graph functions.
    def __add__(self, other):
        from repro.backend import functional as F
        return F.add(self, other)

    def __radd__(self, other):
        from repro.backend import functional as F
        return F.add(other, self)

    def __sub__(self, other):
        from repro.backend import functional as F
        return F.sub(self, other)

    def __rsub__(self, other):
        from repro.backend import functional as F
        return F.sub(other, self)

    def __mul__(self, other):
        from repro.backend import functional as F
        return F.mul(self, other)

    def __rmul__(self, other):
        from repro.backend import functional as F
        return F.mul(other, self)

    def __truediv__(self, other):
        from repro.backend import functional as F
        return F.div(self, other)

    def __rtruediv__(self, other):
        from repro.backend import functional as F
        return F.div(other, self)

    def __neg__(self):
        from repro.backend import functional as F
        return F.neg(self)

    def __getitem__(self, item):
        from repro.backend import functional as F
        return F.getitem(self, item)


class Placeholder(Node):
    """Graph input fed at session-run time."""

    def __init__(self, graph, shape, dtype, name=""):
        super().__init__(graph, "placeholder", [], shape=tuple(shape),
                         dtype=np.dtype(dtype), name=name or f"ph_{graph._id_counter}")
        graph.placeholders[self.name] = self


class Graph:
    """A container of nodes plus per-graph variable and seed state."""

    _graph_counter = itertools.count()

    def __init__(self, name: str = "", seed: Optional[int] = None):
        self.name = name or f"graph_{next(Graph._graph_counter)}"
        self.nodes: List[Node] = []
        self.placeholders: Dict[str, Placeholder] = {}
        self.variables: Dict[str, "Variable"] = {}
        self.seed_stream = SeedStream(seed)
        self._ids = itertools.count()
        self._id_counter = 0
        self._const_cache: Dict[Tuple, Node] = {}

    def _next_id(self) -> int:
        self._id_counter = next(self._ids)
        return self._id_counter

    def next_op_seed(self) -> int:
        """A distinct deterministic seed per random op. Sharing one seed
        would correlate e.g. an epsilon-mask draw with the random-action
        draw, silently truncating exploration."""
        self._op_seed_counter = getattr(self, "_op_seed_counter", 0) + 1
        return self.seed_stream.spawn("op", self._op_seed_counter)

    # -- factories -----------------------------------------------------
    def placeholder(self, shape, dtype=np.float32, name="") -> Placeholder:
        return Placeholder(self, shape, dtype, name=name)

    def constant(self, value, dtype=None, name="") -> Node:
        arr = np.asarray(value, dtype=dtype)
        # Python floats arrive as float64; the backend's working precision
        # is float32, so coerce — but only when the caller did not
        # explicitly request a dtype (an explicit np.float64 must stick).
        if dtype is None and arr.dtype == np.float64:
            arr = arr.astype(np.float32)
        key = None
        if arr.size <= 64:
            key = (arr.tobytes(), str(arr.dtype), arr.shape)
            cached = self._const_cache.get(key)
            if cached is not None:
                return cached
        node = Node(self, "const", [], attrs={"value": arr}, shape=arr.shape,
                    dtype=arr.dtype, name=name)
        if key is not None:
            self._const_cache[key] = node
        return node

    def register_variable(self, var) -> None:
        if var.name in self.variables:
            raise RLGraphError(f"Duplicate variable name {var.name!r} in graph")
        self.variables[var.name] = var

    def as_default(self):
        """Context manager making this the current build graph."""
        graph = self

        class _Ctx:
            def __enter__(self):
                context.push_graph(graph)
                return graph

            def __exit__(self, *exc):
                context.pop_graph()
                return False

        return _Ctx()

    def stats(self) -> Dict[str, int]:
        return {
            "num_nodes": len(self.nodes),
            "num_placeholders": len(self.placeholders),
            "num_variables": len(self.variables),
        }

    def __repr__(self):
        return (f"Graph({self.name}, nodes={len(self.nodes)}, "
                f"vars={len(self.variables)})")
