"""Dual-mode execution backend.

``repro.backend`` provides the two local backends the paper targets
(static graph and define-by-run) behind one functional API:

* ``functional`` (``F``) — ops usable from graph functions in either mode;
* ``graph`` / ``session`` / ``gradients`` — the static-graph substrate
  (TensorFlow stand-in);
* ``eager`` — the define-by-run tape (PyTorch stand-in);
* ``variables`` — mutable state shared by both modes.

The *library-level* backend choice ("xgraph" vs "xtape") is stored here
and consulted by the graph builder and executors.
"""

from repro.backend import context
from repro.backend import functional
from repro.backend.context import (
    device,
    eager_mode,
    get_mode,
    is_symbolic,
    no_grad,
    symbolic_mode,
)
from repro.backend.compiler import (
    OPTIMIZE_LEVELS,
    CompiledPlan,
    compile_plan,
)
from repro.backend.eager import ETensor, backward, collect_leaf_grads, raw
from repro.backend.gradients import gradients
from repro.backend.graph import Graph, Node, Placeholder
from repro.backend.session import Session
from repro.backend.variables import Variable
from repro.utils.errors import RLGraphError

XGRAPH = "xgraph"  # static-graph backend (TensorFlow stand-in)
XTAPE = "xtape"    # define-by-run backend (PyTorch stand-in)

_default_backend = XGRAPH


def set_default_backend(name: str) -> None:
    global _default_backend
    if name not in (XGRAPH, XTAPE):
        raise RLGraphError(f"Unknown backend {name!r}; use 'xgraph' or 'xtape'")
    _default_backend = name


def get_default_backend() -> str:
    return _default_backend


__all__ = [
    "context",
    "functional",
    "device",
    "eager_mode",
    "symbolic_mode",
    "get_mode",
    "is_symbolic",
    "no_grad",
    "ETensor",
    "backward",
    "collect_leaf_grads",
    "raw",
    "gradients",
    "Graph",
    "Node",
    "Placeholder",
    "Session",
    "Variable",
    "CompiledPlan",
    "compile_plan",
    "OPTIMIZE_LEVELS",
    "XGRAPH",
    "XTAPE",
    "set_default_backend",
    "get_default_backend",
]
