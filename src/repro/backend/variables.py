"""Variables: named, mutable state usable from both backends.

In symbolic mode a variable is read via a ``read_var`` node and mutated
through side-effecting ``assign``/``scatter`` nodes that the Session
executes in control-dependency order — the TensorFlow-style semantics
RLgraph's memory components rely on (paper Fig. 2). In eager mode the
same Variable mutates its NumPy storage immediately and reads return a
grad-tracked :class:`~repro.backend.eager.ETensor` (for trainables) or
the raw array.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend import context
from repro.backend.eager import ETensor
from repro.backend.graph import Node
from repro.backend.ops import OPS, apply_op, register_op
from repro.utils.errors import RLGraphError


# -- state-buffer registry ---------------------------------------------------
# Every array that backs live variable state registers here. The
# compiler's buffer-donation pass and the native codegen backend consult
# it before writing into (or caching a pointer to) a buffer: an array
# that IS — or views into — variable storage must never be donated as a
# scratch output, and native plans must refresh cached variable pointers
# when storage is repointed (ParamSlab coalescing).
_STATE_BUFFERS: "weakref.WeakValueDictionary[int, np.ndarray]" = \
    weakref.WeakValueDictionary()

# Bumped whenever an existing Variable's storage is REBOUND to a new
# array (not merely written in place). Native plans cache raw data
# pointers into variable storage and compare this epoch per run.
_STORAGE_EPOCH = 0


def register_state_buffer(arr: np.ndarray) -> None:
    if isinstance(arr, np.ndarray):
        _STATE_BUFFERS[id(arr)] = arr


def bump_storage_epoch() -> None:
    global _STORAGE_EPOCH
    _STORAGE_EPOCH += 1


def storage_epoch() -> int:
    return _STORAGE_EPOCH


def aliases_state(arr) -> bool:
    """True if ``arr`` is (or views into) a registered state buffer."""
    while isinstance(arr, np.ndarray):
        hit = _STATE_BUFFERS.get(id(arr))
        if hit is arr:
            return True
        arr = arr.base
    return False


# -- stateful op specs -------------------------------------------------------
def _read_var_fwd(i, a):
    return a["var"].value


def _assign_fwd(i, a):
    a["var"].set(i[0])
    return a["var"].value


def _assign_add_fwd(i, a):
    var = a["var"]
    var.value += np.asarray(i[0], dtype=var.value.dtype)
    return var.value


def _scatter_update_fwd(i, a):
    idx, values = i
    var = a["var"]
    var.value[np.asarray(idx).astype(np.int64)] = values
    return np.asarray(np.size(idx), dtype=np.int64)


def _scatter_add_fwd(i, a):
    idx, values = i
    var = a["var"]
    np.add.at(var.value, np.asarray(idx).astype(np.int64), values)
    return np.asarray(np.size(idx), dtype=np.int64)


register_op("read_var", _read_var_fwd, None,
            shape_fn=lambda shapes, a: a["var"].shape,
            dtype_fn=lambda dtypes, a: a["var"].dtype, stateful=True)
register_op("assign", _assign_fwd, None,
            shape_fn=lambda shapes, a: a["var"].shape,
            dtype_fn=lambda dtypes, a: a["var"].dtype, stateful=True)
register_op("assign_add", _assign_add_fwd, None,
            shape_fn=lambda shapes, a: a["var"].shape,
            dtype_fn=lambda dtypes, a: a["var"].dtype, stateful=True)
register_op("scatter_update", _scatter_update_fwd, None,
            shape_fn=lambda shapes, a: (), stateful=True)
register_op("scatter_add", _scatter_add_fwd, None,
            shape_fn=lambda shapes, a: (), stateful=True)


class Variable:
    """Named mutable array with a fixed shape and dtype."""

    def __init__(self, name: str, initial_value, trainable: bool = True,
                 dtype=None, graph=None, device: Optional[str] = None):
        value = np.array(initial_value, dtype=dtype)
        if value.dtype == np.float64:
            value = value.astype(np.float32)
        self.name = name
        self.value = value
        register_state_buffer(value)
        self.trainable = bool(trainable)
        self.device = device or context.current_device()
        self.graph = graph
        self.slab: Optional["ParamSlab"] = None
        self._eager_tensor: Optional[ETensor] = None
        self._read_nodes = {}
        if graph is not None:
            graph.register_variable(self)

    @classmethod
    def from_buffer(cls, name: str, buffer: np.ndarray,
                    trainable: bool = False) -> "Variable":
        """Wrap an existing array as a Variable *without copying it* —
        the variable's storage IS ``buffer`` (used for slab handles)."""
        var = cls.__new__(cls)
        var.name = name
        var.value = buffer
        register_state_buffer(buffer)
        var.trainable = bool(trainable)
        var.device = context.current_device()
        var.graph = None
        var.slab = None
        var._eager_tensor = None
        var._read_nodes = {}
        return var

    # -- geometry ------------------------------------------------------------
    @property
    def shape(self):
        return self.value.shape

    @property
    def dtype(self):
        return self.value.dtype

    # -- raw access ------------------------------------------------------------
    def numpy(self) -> np.ndarray:
        return self.value

    def set(self, new_value) -> None:
        """Overwrite in place (shape must match; dtype is cast)."""
        arr = np.asarray(new_value, dtype=self.value.dtype)
        if arr.shape != self.value.shape:
            raise RLGraphError(
                f"Variable {self.name}: shape {arr.shape} != {self.value.shape}")
        self.value[...] = arr
        # _eager_tensor wraps the same buffer, so it stays current.

    # -- handles -----------------------------------------------------------------
    def read(self):
        """Handle for use inside graph functions.

        Symbolic mode -> a ``read_var`` node (one per graph, cached);
        eager mode -> a shared grad-leaf ETensor for trainables, or the raw
        array for non-trainables (cheaper, no tape interaction).
        """
        if context.is_symbolic():
            graph = context.current_graph()
            node = self._read_nodes.get(id(graph))
            if node is None:
                node = apply_op(OPS["read_var"], [], {"var": self})
                node.name = f"read/{self.name}"
                self._read_nodes[id(graph)] = node
            return node
        if not self.trainable:
            return self.value
        if self._eager_tensor is None or self._eager_tensor.data is not self.value:
            self._eager_tensor = ETensor(self.value, requires_grad=True)
        return self._eager_tensor

    def assign(self, value):
        """Assign op (symbolic) or immediate in-place write (eager)."""
        if context.is_symbolic():
            return apply_op(OPS["assign"], [value], {"var": self})
        from repro.backend.eager import raw
        self.set(raw(value))
        return None

    def assign_add(self, delta):
        if context.is_symbolic():
            return apply_op(OPS["assign_add"], [delta], {"var": self})
        from repro.backend.eager import raw
        self.value += np.asarray(raw(delta), dtype=self.value.dtype)
        return None

    def scatter_update(self, indices, values):
        """Row-wise write: ``value[indices] = values``."""
        if context.is_symbolic():
            return apply_op(OPS["scatter_update"], [indices, values],
                            {"var": self})
        from repro.backend.eager import raw
        self.value[np.asarray(raw(indices)).astype(np.int64)] = raw(values)
        return None

    def scatter_add(self, indices, values):
        if context.is_symbolic():
            return apply_op(OPS["scatter_add"], [indices, values], {"var": self})
        from repro.backend.eager import raw
        np.add.at(self.value, np.asarray(raw(indices)).astype(np.int64),
                  raw(values))
        return None

    def grad(self) -> Optional[np.ndarray]:
        """Eager-mode gradient accumulated by the last backward pass."""
        if self._eager_tensor is None:
            return None
        return self._eager_tensor.grad

    def zero_grad(self):
        if self._eager_tensor is not None:
            self._eager_tensor.zero_grad()

    def __repr__(self):
        kind = "trainable" if self.trainable else "state"
        return (f"Variable({self.name}, shape={self.value.shape}, "
                f"dtype={self.value.dtype}, {kind})")


# ---------------------------------------------------------------------------
# Flat-parameter subsystem: coalesced slabs + storage-agnostic flat layouts
# ---------------------------------------------------------------------------
class ParamSlab:
    """One contiguous float32 buffer backing a set of Variables.

    Coalescing repoints each member Variable's ``value`` to a zero-copy
    view into the slab, so every existing access path — ``read_var``
    nodes, eager ETensors, ``set``/``assign_add`` in-place writes —
    keeps working unchanged while whole-model operations (fused
    optimizer updates, flat weight sync) become single kernels over
    ``self.flat``. The member order is the slab layout; a variable can
    belong to at most one slab.
    """

    def __init__(self, variables: Sequence[Variable], name: str = "param-slab"):
        members = list(variables)
        if not members:
            raise RLGraphError(f"ParamSlab {name!r}: empty variable list")
        seen = set()
        for var in members:
            if var.name in seen:
                raise RLGraphError(
                    f"ParamSlab {name!r}: duplicate variable {var.name!r}")
            seen.add(var.name)
            if var.slab is not None:
                raise RLGraphError(
                    f"ParamSlab {name!r}: {var.name!r} already belongs to "
                    f"slab {var.slab.name!r}")
            if var.dtype != np.float32:
                raise RLGraphError(
                    f"ParamSlab {name!r}: {var.name!r} has dtype "
                    f"{var.dtype}; only float32 variables coalesce")
        self.name = name
        self.members = members
        self.layout: List[Tuple[str, int, Tuple[int, ...]]] = []
        offset = 0
        for var in members:
            size = int(np.prod(var.shape)) if var.shape else 1
            self.layout.append((var.name, offset, tuple(var.shape)))
            offset += size
        self.size = offset
        self.flat = np.empty(self.size, dtype=np.float32)
        register_state_buffer(self.flat)
        self._offsets: Dict[str, int] = {}
        for var, (vname, off, shape) in zip(members, self.layout):
            size = int(np.prod(shape)) if shape else 1
            self.flat[off:off + size] = var.value.reshape(-1)
            var.value = self.flat[off:off + size].reshape(shape)
            var.slab = self
            self._offsets[vname] = off
        # Member storage was repointed: native plans holding raw data
        # pointers into the old buffers must re-resolve them.
        bump_storage_epoch()
        self._flat_var: Optional[Variable] = None

    @classmethod
    def ensure(cls, variables: Sequence[Variable],
               name: str = "param-slab") -> "ParamSlab":
        """Slab covering exactly ``variables`` (created sorted by name).

        If the set is already coalesced — by an optimizer, a
        synchronizer, or an explicit ``coalesce_variables()`` call —
        the existing slab is returned, so independent consumers of the
        same variable set agree on one layout.
        """
        members = sorted(variables, key=lambda v: v.name)
        slabs = {id(v.slab) for v in members}
        if len(slabs) == 1 and members and members[0].slab is not None:
            slab = members[0].slab
            if {v.name for v in slab.members} == {v.name for v in members}:
                return slab
            raise RLGraphError(
                f"ParamSlab {name!r}: variables are part of the larger slab "
                f"{slab.name!r}; cannot re-coalesce a subset")
        return cls(members, name=name)

    def flat_variable(self) -> Variable:
        """A (size,)-shaped Variable whose storage IS the slab buffer —
        the handle flat sync ops read/assign through."""
        if self._flat_var is None:
            self._flat_var = Variable.from_buffer(f"{self.name}/flat",
                                                  self.flat)
        return self._flat_var

    def view(self, name: str) -> np.ndarray:
        """The member variable's view into the slab, by variable name."""
        for var in self.members:
            if var.name == name:
                return var.value
        raise RLGraphError(f"ParamSlab {self.name!r}: no member {name!r}")

    def __repr__(self):
        return (f"ParamSlab({self.name}, members={len(self.members)}, "
                f"size={self.size})")


class FlatLayout:
    """Deterministic flat (name, offset, shape) table over a registry.

    Storage-agnostic counterpart to :class:`ParamSlab`: it does not
    claim variable buffers, it only fixes a sorted-by-name packing so
    two same-architecture agents (learner and actor processes) agree on
    the meaning of one flat weight vector. ``gather``/``scatter`` use a
    single memcpy per contiguous slab-backed run and fall back to
    per-variable copies for standalone variables.
    """

    def __init__(self, registry: Dict[str, Variable]):
        self.entries: List[Tuple[str, Variable, int, int, Tuple[int, ...]]] = []
        offset = 0
        for name in sorted(registry):
            var = registry[name]
            size = int(np.prod(var.shape)) if var.shape else 1
            self.entries.append((name, var, offset, size, tuple(var.shape)))
            offset += size
        self.total = offset
        self._runs = self._slab_runs()
        self._runs_sig = self._slab_sig()

    def _slab_sig(self):
        return tuple(id(var.slab) for _, var, _, _, _ in self.entries)

    def _current_runs(self):
        """Runs, rebuilt if slab membership changed since they were
        computed — a layout built before an optimizer coalesces its
        slab (eager backend) must still gain the memcpy fast path."""
        sig = self._slab_sig()
        if sig != self._runs_sig:
            self._runs = self._slab_runs()
            self._runs_sig = sig
        return self._runs

    def _slab_runs(self):
        """Maximal runs of layout entries that are consecutive segments
        of one slab — each run moves with a single memcpy."""
        runs = []
        idx = 0
        while idx < len(self.entries):
            name, var, offset, size, _ = self.entries[idx]
            slab = var.slab
            if slab is None:
                runs.append((None, var, offset, size))
                idx += 1
                continue
            start = slab._offsets.get(name)
            if start is None or not np.shares_memory(var.value, slab.flat):
                runs.append((None, var, offset, size))
                idx += 1
                continue
            stop = start + size
            end = idx + 1
            while end < len(self.entries):
                next_name, next_var, _, next_size, _ = self.entries[end]
                if next_var.slab is not slab \
                        or slab._offsets.get(next_name) != stop:
                    break
                stop += next_size
                end += 1
            runs.append((slab, (start, stop), offset, stop - start))
            idx = end
        return runs

    def gather(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Pack every variable into one float32 vector."""
        if out is None:
            out = np.empty(self.total, dtype=np.float32)
        for slab, src, offset, size in self._current_runs():
            if slab is None:
                out[offset:offset + size] = src.value.reshape(-1)
            else:
                start, stop = src
                out[offset:offset + size] = slab.flat[start:stop]
        return out

    def scatter(self, flat: np.ndarray) -> None:
        """Write a flat vector back into the variables, in place."""
        flat = np.asarray(flat)
        if flat.shape != (self.total,):
            raise RLGraphError(
                f"FlatLayout: expected a ({self.total},) vector, got shape "
                f"{flat.shape}")
        for slab, dst, offset, size in self._current_runs():
            if slab is None:
                dst.value.reshape(-1)[...] = flat[offset:offset + size]
            else:
                start, stop = dst
                slab.flat[start:stop] = flat[offset:offset + size]

    def to_dict(self, flat: np.ndarray) -> Dict[str, np.ndarray]:
        """Split a flat vector into a per-variable dict (checkpoints)."""
        flat = np.asarray(flat)
        return {name: flat[offset:offset + size].reshape(shape).copy()
                for name, _, offset, size, shape in self.entries}
