"""Variables: named, mutable state usable from both backends.

In symbolic mode a variable is read via a ``read_var`` node and mutated
through side-effecting ``assign``/``scatter`` nodes that the Session
executes in control-dependency order — the TensorFlow-style semantics
RLgraph's memory components rely on (paper Fig. 2). In eager mode the
same Variable mutates its NumPy storage immediately and reads return a
grad-tracked :class:`~repro.backend.eager.ETensor` (for trainables) or
the raw array.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import context
from repro.backend.eager import ETensor
from repro.backend.graph import Node
from repro.backend.ops import OPS, apply_op, register_op
from repro.utils.errors import RLGraphError


# -- stateful op specs -------------------------------------------------------
def _read_var_fwd(i, a):
    return a["var"].value


def _assign_fwd(i, a):
    a["var"].set(i[0])
    return a["var"].value


def _assign_add_fwd(i, a):
    var = a["var"]
    var.value += np.asarray(i[0], dtype=var.value.dtype)
    return var.value


def _scatter_update_fwd(i, a):
    idx, values = i
    var = a["var"]
    var.value[np.asarray(idx).astype(np.int64)] = values
    return np.asarray(np.size(idx), dtype=np.int64)


def _scatter_add_fwd(i, a):
    idx, values = i
    var = a["var"]
    np.add.at(var.value, np.asarray(idx).astype(np.int64), values)
    return np.asarray(np.size(idx), dtype=np.int64)


register_op("read_var", _read_var_fwd, None,
            shape_fn=lambda shapes, a: a["var"].shape,
            dtype_fn=lambda dtypes, a: a["var"].dtype, stateful=True)
register_op("assign", _assign_fwd, None,
            shape_fn=lambda shapes, a: a["var"].shape,
            dtype_fn=lambda dtypes, a: a["var"].dtype, stateful=True)
register_op("assign_add", _assign_add_fwd, None,
            shape_fn=lambda shapes, a: a["var"].shape,
            dtype_fn=lambda dtypes, a: a["var"].dtype, stateful=True)
register_op("scatter_update", _scatter_update_fwd, None,
            shape_fn=lambda shapes, a: (), stateful=True)
register_op("scatter_add", _scatter_add_fwd, None,
            shape_fn=lambda shapes, a: (), stateful=True)


class Variable:
    """Named mutable array with a fixed shape and dtype."""

    def __init__(self, name: str, initial_value, trainable: bool = True,
                 dtype=None, graph=None, device: Optional[str] = None):
        value = np.array(initial_value, dtype=dtype)
        if value.dtype == np.float64:
            value = value.astype(np.float32)
        self.name = name
        self.value = value
        self.trainable = bool(trainable)
        self.device = device or context.current_device()
        self.graph = graph
        self._eager_tensor: Optional[ETensor] = None
        self._read_nodes = {}
        if graph is not None:
            graph.register_variable(self)

    # -- geometry ------------------------------------------------------------
    @property
    def shape(self):
        return self.value.shape

    @property
    def dtype(self):
        return self.value.dtype

    # -- raw access ------------------------------------------------------------
    def numpy(self) -> np.ndarray:
        return self.value

    def set(self, new_value) -> None:
        """Overwrite in place (shape must match; dtype is cast)."""
        arr = np.asarray(new_value, dtype=self.value.dtype)
        if arr.shape != self.value.shape:
            raise RLGraphError(
                f"Variable {self.name}: shape {arr.shape} != {self.value.shape}")
        self.value[...] = arr
        # _eager_tensor wraps the same buffer, so it stays current.

    # -- handles -----------------------------------------------------------------
    def read(self):
        """Handle for use inside graph functions.

        Symbolic mode -> a ``read_var`` node (one per graph, cached);
        eager mode -> a shared grad-leaf ETensor for trainables, or the raw
        array for non-trainables (cheaper, no tape interaction).
        """
        if context.is_symbolic():
            graph = context.current_graph()
            node = self._read_nodes.get(id(graph))
            if node is None:
                node = apply_op(OPS["read_var"], [], {"var": self})
                node.name = f"read/{self.name}"
                self._read_nodes[id(graph)] = node
            return node
        if not self.trainable:
            return self.value
        if self._eager_tensor is None or self._eager_tensor.data is not self.value:
            self._eager_tensor = ETensor(self.value, requires_grad=True)
        return self._eager_tensor

    def assign(self, value):
        """Assign op (symbolic) or immediate in-place write (eager)."""
        if context.is_symbolic():
            return apply_op(OPS["assign"], [value], {"var": self})
        from repro.backend.eager import raw
        self.set(raw(value))
        return None

    def assign_add(self, delta):
        if context.is_symbolic():
            return apply_op(OPS["assign_add"], [delta], {"var": self})
        from repro.backend.eager import raw
        self.value += np.asarray(raw(delta), dtype=self.value.dtype)
        return None

    def scatter_update(self, indices, values):
        """Row-wise write: ``value[indices] = values``."""
        if context.is_symbolic():
            return apply_op(OPS["scatter_update"], [indices, values],
                            {"var": self})
        from repro.backend.eager import raw
        self.value[np.asarray(raw(indices)).astype(np.int64)] = raw(values)
        return None

    def scatter_add(self, indices, values):
        if context.is_symbolic():
            return apply_op(OPS["scatter_add"], [indices, values], {"var": self})
        from repro.backend.eager import raw
        np.add.at(self.value, np.asarray(raw(indices)).astype(np.int64),
                  raw(values))
        return None

    def grad(self) -> Optional[np.ndarray]:
        """Eager-mode gradient accumulated by the last backward pass."""
        if self._eager_tensor is None:
            return None
        return self._eager_tensor.grad

    def zero_grad(self):
        if self._eager_tensor is not None:
            self._eager_tensor.zero_grad()

    def __repr__(self):
        kind = "trainable" if self.trainable else "state"
        return (f"Variable({self.name}, shape={self.value.shape}, "
                f"dtype={self.value.dtype}, {kind})")
