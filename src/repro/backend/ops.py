"""Op specifications shared by the symbolic graph and the eager tape.

Every primitive is an :class:`OpSpec`: a NumPy forward kernel, an optional
gradient rule (written against :mod:`repro.backend.functional`, so the
same rule builds grad *nodes* in symbolic mode and computes grad *values*
in eager mode), and best-effort shape/dtype inference for graph
construction.

``apply_op`` is the single dispatch point:

* symbolic mode -> creates a :class:`~repro.backend.graph.Node`;
* eager mode    -> computes immediately, recording to the tape when any
  input requires gradients.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.backend import context
from repro.backend import kernels
from repro.backend.eager import ETensor, _needs_grad, raw
from repro.backend.graph import Graph, Node
from repro.utils.errors import RLGraphError


class OpSpec:
    """Definition of a primitive operation."""

    __slots__ = ("name", "forward", "grad", "shape_fn", "dtype_fn", "stateful",
                 "num_grad_inputs")

    def __init__(self, name: str,
                 forward: Callable[[List[np.ndarray], Dict[str, Any]], np.ndarray],
                 grad: Optional[Callable] = None,
                 shape_fn: Optional[Callable] = None,
                 dtype_fn: Optional[Callable] = None,
                 stateful: bool = False):
        self.name = name
        self.forward = forward
        self.grad = grad
        self.shape_fn = shape_fn
        self.dtype_fn = dtype_fn
        self.stateful = stateful


OPS: Dict[str, OpSpec] = {}


def register_op(name: str, forward, grad=None, shape_fn=None, dtype_fn=None,
                stateful=False) -> OpSpec:
    if name in OPS:
        raise RLGraphError(f"Op {name!r} already registered")
    spec = OpSpec(name, forward, grad, shape_fn, dtype_fn, stateful)
    OPS[name] = spec
    return spec


# ---------------------------------------------------------------------------
# Handle coercion
# ---------------------------------------------------------------------------
def as_symbolic(value, graph: Graph) -> Node:
    if isinstance(value, Node):
        if value.graph is not graph:
            raise RLGraphError(
                f"Node {value.name} belongs to graph {value.graph.name}, "
                f"not the current graph {graph.name}")
        return value
    if isinstance(value, ETensor):
        return graph.constant(value.data)
    return graph.constant(value)


def handle_shape(handle):
    """Best-known shape of a handle (may contain None) or None."""
    if isinstance(handle, Node):
        return handle.shape
    if isinstance(handle, ETensor):
        return handle.data.shape
    return np.shape(handle)


def handle_dtype(handle):
    if isinstance(handle, Node):
        return handle.dtype
    if isinstance(handle, ETensor):
        return handle.data.dtype
    arr = np.asarray(handle)
    if arr.dtype == np.float64:
        return np.dtype(np.float32)
    return arr.dtype


def apply_op(spec: OpSpec, inputs: Sequence[Any], attrs: Optional[Dict] = None,
             name: str = ""):
    attrs = attrs or {}
    if context.is_symbolic():
        graph = context.current_graph()
        nodes = [as_symbolic(x, graph) for x in inputs]
        shape = None
        dtype = None
        try:
            if spec.shape_fn is not None:
                shape = spec.shape_fn([n.shape for n in nodes], attrs)
        except Exception:
            shape = None
        try:
            if spec.dtype_fn is not None:
                dtype = spec.dtype_fn([n.dtype for n in nodes], attrs)
            else:
                known = [n.dtype for n in nodes if n.dtype is not None]
                dtype = np.result_type(*known) if known else None
                if dtype == np.float64:
                    dtype = np.dtype(np.float32)
        except Exception:
            dtype = None
        return Node(graph, spec.name, nodes, attrs, shape, dtype, name=name,
                    stateful=spec.stateful)
    # Eager path.
    raws = [raw(x) for x in inputs]
    out = spec.forward(raws, attrs)
    if (spec.grad is not None and context.grad_enabled()
            and any(_needs_grad(x) for x in inputs)):
        return ETensor(out, parents=list(inputs), spec=spec, attrs=attrs)
    return out


# ---------------------------------------------------------------------------
# Shape inference helpers (None-aware)
# ---------------------------------------------------------------------------
def broadcast_shapes_unknown(shapes):
    """NumPy broadcast over shapes that may contain None dims."""
    if any(s is None for s in shapes):
        return None
    ndim = max((len(s) for s in shapes), default=0)
    # Shorter shapes broadcast as if left-padded with 1s (known!), so pad
    # with 1 — padding with None would wrongly mark result dims unknown.
    padded = [(1,) * (ndim - len(s)) + tuple(s) for s in shapes]
    out = []
    for dims in zip(*padded):
        known = [d for d in dims if d is not None]
        if not known:
            out.append(None)
        elif all(d == 1 for d in known):
            # All known dims are 1; an unknown dim (padded or None) decides.
            out.append(1 if len(known) == len(dims) else None)
        else:
            non_one = {d for d in known if d != 1}
            if len(non_one) > 1:
                raise RLGraphError(f"Incompatible broadcast shapes {shapes}")
            dim = non_one.pop()
            out.append(dim if None not in dims else dim)
    return tuple(out)


def _ew_shape(shapes, attrs):
    return broadcast_shapes_unknown(shapes)


def _first_shape(shapes, attrs):
    return shapes[0]


def _reduce_shape(shapes, attrs):
    shape = shapes[0]
    if shape is None:
        return None
    axis = attrs.get("axis")
    keepdims = attrs.get("keepdims", False)
    if axis is None:
        return (1,) * len(shape) if keepdims else ()
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    axes = tuple(a % len(shape) for a in axes)
    out = []
    for i, d in enumerate(shape):
        if i in axes:
            if keepdims:
                out.append(1)
        else:
            out.append(d)
    return tuple(out)


def _matmul_shape(shapes, attrs):
    a, b = shapes
    if a is None or b is None:
        return None
    if len(a) != 2 or len(b) != 2:
        return None
    return (a[0], b[1])


def _bool_dtype(dtypes, attrs):
    return np.dtype(np.bool_)


def _float_dtype(dtypes, attrs):
    return np.dtype(np.float32)


def _int_dtype(dtypes, attrs):
    return np.dtype(np.int64)


def _first_dtype(dtypes, attrs):
    return dtypes[0]


# ---------------------------------------------------------------------------
# Gradient rule helpers
# ---------------------------------------------------------------------------
def _F():
    from repro.backend import functional as F
    return F


# ======================= elementwise arithmetic =============================
def _grad_add(inputs, output, g, attrs):
    F = _F()
    x, y = inputs
    return (F.unbroadcast_like(g, x), F.unbroadcast_like(g, y))


def _grad_sub(inputs, output, g, attrs):
    F = _F()
    x, y = inputs
    return (F.unbroadcast_like(g, x), F.unbroadcast_like(F.neg(g), y))


def _grad_mul(inputs, output, g, attrs):
    F = _F()
    x, y = inputs
    return (F.unbroadcast_like(F.mul(g, y), x),
            F.unbroadcast_like(F.mul(g, x), y))


def _grad_div(inputs, output, g, attrs):
    F = _F()
    x, y = inputs
    gx = F.div(g, y)
    gy = F.neg(F.div(F.mul(g, x), F.mul(y, y)))
    return (F.unbroadcast_like(gx, x), F.unbroadcast_like(gy, y))


register_op("add", lambda i, a: i[0] + i[1], _grad_add, _ew_shape)
register_op("sub", lambda i, a: i[0] - i[1], _grad_sub, _ew_shape)
register_op("mul", lambda i, a: i[0] * i[1], _grad_mul, _ew_shape)
register_op("div", lambda i, a: np.true_divide(i[0], i[1]).astype(np.float32)
            if np.issubdtype(np.asarray(i[0]).dtype, np.integer)
            and np.issubdtype(np.asarray(i[1]).dtype, np.integer)
            else np.true_divide(i[0], i[1]),
            _grad_div, _ew_shape, dtype_fn=_float_dtype)
register_op("neg", lambda i, a: -i[0],
            lambda inp, out, g, a: (_F().neg(g),), _first_shape)
register_op("mod", lambda i, a: np.mod(i[0], i[1]), None, _ew_shape)
register_op("power", lambda i, a: np.power(i[0], a["p"]),
            lambda inp, out, g, a: (
                _F().mul(g, _F().mul(a["p"], _F().power(inp[0], a["p"] - 1))),),
            _first_shape, dtype_fn=_float_dtype)

register_op("exp", lambda i, a: np.exp(i[0]),
            lambda inp, out, g, a: (_F().mul(g, out),),
            _first_shape, dtype_fn=_float_dtype)
register_op("log", lambda i, a: np.log(i[0]),
            lambda inp, out, g, a: (_F().div(g, inp[0]),),
            _first_shape, dtype_fn=_float_dtype)
register_op("sqrt", lambda i, a: np.sqrt(i[0]),
            lambda inp, out, g, a: (_F().div(g, _F().mul(2.0, out)),),
            _first_shape, dtype_fn=_float_dtype)
register_op("square", lambda i, a: np.square(i[0]),
            lambda inp, out, g, a: (_F().mul(g, _F().mul(2.0, inp[0])),),
            _first_shape)
register_op("abs", lambda i, a: np.abs(i[0]),
            lambda inp, out, g, a: (_F().mul(g, _F().sign(inp[0])),),
            _first_shape)
register_op("sign", lambda i, a: np.sign(i[0]), None, _first_shape)
register_op("floor", lambda i, a: np.floor(i[0]), None, _first_shape)


def _grad_maximum(inputs, output, g, attrs):
    F = _F()
    x, y = inputs
    mask = F.cast(F.greater_equal(x, y), np.float32)
    return (F.unbroadcast_like(F.mul(g, mask), x),
            F.unbroadcast_like(F.mul(g, F.sub(1.0, mask)), y))


def _grad_minimum(inputs, output, g, attrs):
    F = _F()
    x, y = inputs
    mask = F.cast(F.less_equal(x, y), np.float32)
    return (F.unbroadcast_like(F.mul(g, mask), x),
            F.unbroadcast_like(F.mul(g, F.sub(1.0, mask)), y))


register_op("maximum", lambda i, a: np.maximum(i[0], i[1]), _grad_maximum, _ew_shape)
register_op("minimum", lambda i, a: np.minimum(i[0], i[1]), _grad_minimum, _ew_shape)


def _grad_clip(inputs, output, g, attrs):
    F = _F()
    x = inputs[0]
    inside = F.logical_and(F.greater_equal(x, attrs["lo"]),
                           F.less_equal(x, attrs["hi"]))
    return (F.mul(g, F.cast(inside, np.float32)),)


register_op("clip", lambda i, a: np.clip(i[0], a["lo"], a["hi"]), _grad_clip,
            _first_shape)

# ======================= activations ========================================
register_op("relu", lambda i, a: np.maximum(i[0], 0),
            lambda inp, out, g, a: (
                _F().mul(g, _F().cast(_F().greater(inp[0], 0.0), np.float32)),),
            _first_shape)
register_op("tanh", lambda i, a: np.tanh(i[0]),
            lambda inp, out, g, a: (
                _F().mul(g, _F().sub(1.0, _F().square(out))),),
            _first_shape, dtype_fn=_float_dtype)
register_op("sigmoid", lambda i, a: 1.0 / (1.0 + np.exp(-i[0])),
            lambda inp, out, g, a: (
                _F().mul(g, _F().mul(out, _F().sub(1.0, out))),),
            _first_shape, dtype_fn=_float_dtype)
register_op("softplus", lambda i, a: np.logaddexp(0.0, i[0]),
            lambda inp, out, g, a: (_F().mul(g, _F().sigmoid(inp[0])),),
            _first_shape, dtype_fn=_float_dtype)
register_op("atanh", lambda i, a: np.arctanh(i[0]),
            lambda inp, out, g, a: (
                _F().div(g, _F().sub(1.0, _F().square(inp[0]))),),
            _first_shape, dtype_fn=_float_dtype)

# ======================= comparisons / logic =================================
for _name, _fn in [("equal", np.equal), ("not_equal", np.not_equal),
                   ("greater", np.greater), ("greater_equal", np.greater_equal),
                   ("less", np.less), ("less_equal", np.less_equal)]:
    register_op(_name, (lambda f: lambda i, a: f(i[0], i[1]))(_fn), None,
                _ew_shape, dtype_fn=_bool_dtype)

register_op("logical_and", lambda i, a: np.logical_and(i[0], i[1]), None,
            _ew_shape, dtype_fn=_bool_dtype)
register_op("logical_or", lambda i, a: np.logical_or(i[0], i[1]), None,
            _ew_shape, dtype_fn=_bool_dtype)
register_op("logical_not", lambda i, a: np.logical_not(i[0]), None,
            _first_shape, dtype_fn=_bool_dtype)


def _grad_cast(inputs, output, g, attrs):
    F = _F()
    src = handle_dtype(inputs[0])
    if src is not None and np.issubdtype(src, np.floating):
        return (F.cast(g, src),)
    return (None,)


register_op("cast", lambda i, a: np.asarray(i[0]).astype(a["dtype"]), _grad_cast,
            _first_shape, dtype_fn=lambda d, a: np.dtype(a["dtype"]))

# ======================= linear algebra ======================================
def _grad_matmul(inputs, output, g, attrs):
    F = _F()
    x, y = inputs
    return (F.matmul(g, F.transpose(y, (1, 0))),
            F.matmul(F.transpose(x, (1, 0)), g))


register_op("matmul", lambda i, a: i[0] @ i[1], _grad_matmul, _matmul_shape,
            dtype_fn=_float_dtype)

# ======================= reductions ==========================================
def _grad_sum(inputs, output, g, attrs):
    F = _F()
    return (F.broadcast_like(g, inputs[0], axis=attrs.get("axis"),
                             keepdims=attrs.get("keepdims", False)),)


def _grad_mean(inputs, output, g, attrs):
    F = _F()
    x = inputs[0]
    gb = F.broadcast_like(g, x, axis=attrs.get("axis"),
                          keepdims=attrs.get("keepdims", False))
    ratio = F.div(F.cast(F.size_of(output), np.float32),
                  F.cast(F.size_of(x), np.float32))
    return (F.mul(gb, ratio),)


def _grad_reduce_max(inputs, output, g, attrs):
    F = _F()
    x = inputs[0]
    out_b = F.broadcast_like(output, x, axis=attrs.get("axis"),
                             keepdims=attrs.get("keepdims", False))
    g_b = F.broadcast_like(g, x, axis=attrs.get("axis"),
                           keepdims=attrs.get("keepdims", False))
    mask = F.cast(F.equal(x, out_b), np.float32)
    return (F.mul(g_b, mask),)


register_op("reduce_sum",
            lambda i, a: np.sum(i[0], axis=a.get("axis"),
                                keepdims=a.get("keepdims", False)),
            _grad_sum, _reduce_shape)
register_op("reduce_mean",
            lambda i, a: np.mean(i[0], axis=a.get("axis"),
                                 keepdims=a.get("keepdims", False),
                                 dtype=np.float32),
            _grad_mean, _reduce_shape, dtype_fn=_float_dtype)
register_op("reduce_max",
            lambda i, a: np.max(i[0], axis=a.get("axis"),
                                keepdims=a.get("keepdims", False)),
            _grad_reduce_max, _reduce_shape)
register_op("reduce_min",
            lambda i, a: np.min(i[0], axis=a.get("axis"),
                                keepdims=a.get("keepdims", False)),
            None, _reduce_shape)
register_op("argmax", lambda i, a: np.argmax(i[0], axis=a.get("axis")),
            None, _reduce_shape, dtype_fn=_int_dtype)
register_op("cumsum", lambda i, a: np.cumsum(i[0], axis=a.get("axis", -1)),
            lambda inp, out, g, a: (
                _F().flip(_F().cumsum(_F().flip(g, a.get("axis", -1)),
                                      axis=a.get("axis", -1)),
                          a.get("axis", -1)),),
            _first_shape)
register_op("flip", lambda i, a: np.flip(i[0], axis=a["axis"]),
            lambda inp, out, g, a: (_F().flip(g, a["axis"]),), _first_shape)

# ======================= shape manipulation ==================================
def _reshape_shape(shapes, attrs):
    new = attrs["newshape"]
    if any(d == -1 or d is None for d in new):
        src = shapes[0]
        if src is not None and all(d is not None for d in src):
            try:
                return np.empty(src).reshape(new).shape
            except Exception:
                return tuple(None if (d == -1 or d is None) else d for d in new)
        return tuple(None if (d == -1 or d is None) else d for d in new)
    return tuple(new)


def _reshape_fwd(i, a):
    new = tuple(-1 if d is None else d for d in a["newshape"])
    return np.reshape(i[0], new)


register_op("reshape", _reshape_fwd,
            lambda inp, out, g, a: (_F().reshape_like(g, inp[0]),),
            _reshape_shape)
register_op("reshape_like", lambda i, a: np.reshape(i[0], np.shape(i[1])),
            lambda inp, out, g, a: (_F().reshape_like(g, inp[0]), None),
            lambda shapes, a: shapes[1])


def _transpose_shape(shapes, attrs):
    s = shapes[0]
    if s is None:
        return None
    perm = attrs["perm"]
    return tuple(s[p] for p in perm)


register_op("transpose", lambda i, a: np.transpose(i[0], a["perm"]),
            lambda inp, out, g, a: (
                _F().transpose(g, tuple(np.argsort(a["perm"]))),),
            _transpose_shape)


def _expand_shape(shapes, attrs):
    s = shapes[0]
    if s is None:
        return None
    axis = attrs["axis"] % (len(s) + 1)
    return s[:axis] + (1,) + s[axis:]


register_op("expand_dims", lambda i, a: np.expand_dims(i[0], a["axis"]),
            lambda inp, out, g, a: (_F().reshape_like(g, inp[0]),),
            _expand_shape)
register_op("squeeze", lambda i, a: np.squeeze(i[0], axis=a.get("axis")),
            lambda inp, out, g, a: (_F().reshape_like(g, inp[0]),),
            lambda shapes, a: None if shapes[0] is None else tuple(
                d for i2, d in enumerate(shapes[0])
                if not (d == 1 and (a.get("axis") is None
                                    or i2 in np.atleast_1d(a.get("axis"))))))


def _concat_shape(shapes, attrs):
    if any(s is None for s in shapes):
        return None
    axis = attrs.get("axis", 0)
    base = list(shapes[0])
    axis = axis % len(base)
    total = 0
    for s in shapes:
        if s[axis] is None:
            total = None
            break
        total += s[axis]
    base[axis] = total
    for i, d in enumerate(base):
        if i != axis:
            if any(s[i] != d for s in shapes if s[i] is not None and d is not None):
                return None
    return tuple(base)


def _grad_concat(inputs, output, g, attrs):
    F = _F()
    axis = attrs.get("axis", 0)
    grads = []
    for idx in range(len(inputs)):
        grads.append(F.concat_slice(g, *inputs, index=idx, axis=axis))
    return tuple(grads)


def _concat_slice_fwd(i, a):
    g = i[0]
    parts = i[1:]
    axis = a["axis"]
    index = a["index"]
    start = sum(np.shape(p)[axis] for p in parts[:index])
    stop = start + np.shape(parts[index])[axis]
    slicer = [slice(None)] * np.ndim(g)
    slicer[axis] = slice(start, stop)
    return g[tuple(slicer)]


register_op("concat", lambda i, a: np.concatenate(i, axis=a.get("axis", 0)),
            _grad_concat, _concat_shape)
register_op("concat_slice", _concat_slice_fwd,
            None, lambda shapes, a: shapes[1 + a["index"]])


def _stack_shape(shapes, attrs):
    if any(s is None for s in shapes):
        return None
    axis = attrs.get("axis", 0)
    base = list(shapes[0])
    axis = axis % (len(base) + 1)
    return tuple(base[:axis] + [len(shapes)] + base[axis:])


def _grad_stack(inputs, output, g, attrs):
    F = _F()
    axis = attrs.get("axis", 0)
    return tuple(F.take_index(g, i, axis=axis) for i in range(len(inputs)))


register_op("stack", lambda i, a: np.stack(i, axis=a.get("axis", 0)),
            _grad_stack, _stack_shape)
register_op("take_index", lambda i, a: np.take(i[0], a["index"], axis=a["axis"]),
            None,
            lambda shapes, a: None if shapes[0] is None else tuple(
                d for j, d in enumerate(shapes[0]) if j != a["axis"] % len(shapes[0])))


_SHAPE_SENTINEL = 1000003  # replaces unknown dims during shape probing


def _getitem_shape(shapes, attrs):
    s = shapes[0]
    if s is None:
        return None
    probe_shape = tuple(_SHAPE_SENTINEL if d is None else d for d in s)
    try:
        # A broadcast view costs no memory regardless of sentinel size.
        probe = np.broadcast_to(np.int8(0), probe_shape)
        result = probe[attrs["idx"]].shape
    except Exception:
        return None
    return tuple(None if d == _SHAPE_SENTINEL else d for d in result)


def _grad_getitem(inputs, output, g, attrs):
    F = _F()
    return (F.getitem_grad(g, inputs[0], idx=attrs["idx"]),)


def _getitem_grad_fwd(i, a):
    g, x = i
    out = np.zeros_like(x, dtype=np.asarray(g).dtype)
    np.add.at(out, a["idx"], g)
    return out


register_op("getitem", lambda i, a: i[0][a["idx"]], _grad_getitem, _getitem_shape)
register_op("getitem_grad", _getitem_grad_fwd, None,
            lambda shapes, a: shapes[1])


def _gather_shape(shapes, attrs):
    params, idx = shapes
    if params is None or idx is None:
        return None
    return tuple(idx) + tuple(params[1:])


def _grad_gather(inputs, output, g, attrs):
    F = _F()
    return (F.gather_grad(g, inputs[0], inputs[1]), None)


def _gather_grad_fwd(i, a):
    g, params, idx = i
    out = np.zeros_like(params, dtype=np.asarray(g).dtype)
    np.add.at(out, np.asarray(idx).astype(np.int64), g)
    return out


register_op("gather", lambda i, a: np.take(i[0], np.asarray(i[1]).astype(np.int64),
                                           axis=0),
            _grad_gather, _gather_shape, dtype_fn=_first_dtype)
register_op("gather_grad", _gather_grad_fwd, None, lambda shapes, a: shapes[1])

register_op("one_hot", lambda i, a: kernels.one_hot(i[0], a["depth"]),
            None,
            lambda shapes, a: None if shapes[0] is None
            else tuple(shapes[0]) + (a["depth"],),
            dtype_fn=_float_dtype)


def _grad_where(inputs, output, g, attrs):
    F = _F()
    cond = inputs[0]
    mask = F.cast(cond, np.float32)
    return (None,
            F.unbroadcast_like(F.mul(g, mask), inputs[1]),
            F.unbroadcast_like(F.mul(g, F.sub(1.0, mask)), inputs[2]))


register_op("where", lambda i, a: np.where(i[0], i[1], i[2]), _grad_where,
            lambda shapes, a: broadcast_shapes_unknown(shapes),
            dtype_fn=lambda d, a: d[1])

register_op("identity", lambda i, a: i[0],
            lambda inp, out, g, a: (g,), _first_shape, dtype_fn=_first_dtype)
register_op("stop_gradient", lambda i, a: i[0], None, _first_shape,
            dtype_fn=_first_dtype)
register_op("tile", lambda i, a: np.tile(i[0], a["reps"]), None, None)

# ``ones_like``: shape-tracking constants (e.g. unit importance weights)
# without burning elementwise kernels on a mul/add chain. ``anchor``
# threads a data dependency through; the compiler elides it to its
# first input when that input is pure, and keeps it otherwise — the
# forward COPIES, so a fetched value anchored on mutable state (e.g. a
# memory's size read) is a snapshot, not an alias into the live
# variable buffer.
register_op("ones_like",
            lambda i, a: np.ones(np.shape(i[0]), dtype=a["dtype"]),
            None, _first_shape, dtype_fn=lambda d, a: np.dtype(a["dtype"]))
register_op("anchor", lambda i, a: np.array(i[0]),
            lambda inp, out, g, a: (g,) + (None,) * (len(inp) - 1),
            _first_shape, dtype_fn=_first_dtype)

# ======================= backward-only helpers ===============================
register_op("unbroadcast_like_op",
            lambda i, a: kernels.unbroadcast(i[0], np.shape(i[1])),
            None, lambda shapes, a: shapes[1])


def _broadcast_like_fwd(i, a):
    g, ref = i
    axis = a.get("axis")
    keepdims = a.get("keepdims", False)
    g = np.asarray(g)
    if not keepdims and axis is not None:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        for ax in sorted(x % np.ndim(ref) for x in axes):
            g = np.expand_dims(g, ax)
    elif not keepdims and axis is None:
        g = np.reshape(g, (1,) * np.ndim(ref))
    return np.broadcast_to(g, np.shape(ref))


register_op("broadcast_like", _broadcast_like_fwd, None,
            lambda shapes, a: shapes[1])

register_op("shape_of", lambda i, a: np.asarray(np.shape(i[0]), dtype=np.int64),
            None, lambda shapes, a: (None if shapes[0] is None
                                     else (len(shapes[0]),)),
            dtype_fn=_int_dtype)
register_op("size_of", lambda i, a: np.asarray(np.size(i[0]), dtype=np.int64),
            None, lambda shapes, a: (), dtype_fn=_int_dtype)
register_op("dyn_arange", lambda i, a: np.arange(int(i[0]), dtype=np.int64),
            None, lambda shapes, a: (None,), dtype_fn=_int_dtype)

register_op("searchsorted",
            lambda i, a: np.searchsorted(i[0], i[1], side=a.get("side", "left")),
            None, lambda shapes, a: shapes[1], dtype_fn=_int_dtype)

# ======================= convolution ==========================================
def _conv2d_shape(shapes, attrs):
    x, f = shapes
    if x is None or f is None:
        return None
    n, h, w, _ = x
    kh, kw, _, cout = f
    stride, padding = attrs["stride"], attrs["padding"]
    oh = None if h is None else kernels.conv2d_output_size(h, kh, stride, padding)
    ow = None if w is None else kernels.conv2d_output_size(w, kw, stride, padding)
    return (n, oh, ow, cout)


def _grad_conv2d(inputs, output, g, attrs):
    F = _F()
    x, f = inputs
    return (F.conv2d_grad_input(g, x, f, stride=attrs["stride"],
                                padding=attrs["padding"]),
            F.conv2d_grad_filters(g, x, f, stride=attrs["stride"],
                                  padding=attrs["padding"]))


register_op("conv2d",
            lambda i, a: kernels.conv2d_forward(i[0], i[1], a["stride"],
                                                a["padding"]),
            _grad_conv2d, _conv2d_shape, dtype_fn=_float_dtype)
register_op("conv2d_grad_input",
            lambda i, a: kernels.conv2d_backward(i[0], i[1], i[2], a["stride"],
                                                 a["padding"])[0],
            None, lambda shapes, a: shapes[1], dtype_fn=_float_dtype)
register_op("conv2d_grad_filters",
            lambda i, a: kernels.conv2d_backward(i[0], i[1], i[2], a["stride"],
                                                 a["padding"])[1],
            None, lambda shapes, a: shapes[2], dtype_fn=_float_dtype)

# ======================= LSTM =================================================
def _lstm_seq_fwd(i, a):
    x, w, b, h0, c0 = i
    outs, _, _, _ = kernels.lstm_forward(x, w, b, h0, c0)
    return outs


def _lstm_final_c_fwd(i, a):
    x, w, b, h0, c0 = i
    _, _, c, _ = kernels.lstm_forward(x, w, b, h0, c0)
    return c


def _grad_lstm_seq(inputs, output, g, attrs):
    F = _F()
    x, w, b, h0, c0 = inputs
    dx = F.lstm_grad(g, x, w, b, h0, c0, which=0)
    dw = F.lstm_grad(g, x, w, b, h0, c0, which=1)
    db = F.lstm_grad(g, x, w, b, h0, c0, which=2)
    dh0 = F.lstm_grad(g, x, w, b, h0, c0, which=3)
    dc0 = F.lstm_grad(g, x, w, b, h0, c0, which=4)
    return (dx, dw, db, dh0, dc0)


def _lstm_grad_fwd(i, a):
    g, x, w, b, h0, c0 = i
    _, _, _, cache = kernels.lstm_forward(x, w, b, h0, c0)
    hidden = h0.shape[-1]
    zeros_h = np.zeros_like(h0, dtype=np.float32)
    grads = kernels.lstm_backward(np.asarray(g, dtype=np.float32), zeros_h,
                                  zeros_h, x, w, cache)
    return grads[a["which"]]


def _lstm_seq_shape(shapes, attrs):
    x, w, b, h0, c0 = shapes
    if x is None or h0 is None:
        return None
    return (x[0], x[1], h0[-1])


register_op("lstm_seq", _lstm_seq_fwd, _grad_lstm_seq, _lstm_seq_shape,
            dtype_fn=_float_dtype)
register_op("lstm_final_c", _lstm_final_c_fwd, None,
            lambda shapes, a: shapes[4], dtype_fn=_float_dtype)
register_op("lstm_grad", _lstm_grad_fwd, None,
            lambda shapes, a: shapes[1 + a["which"]], dtype_fn=_float_dtype)

# ======================= random ops ===========================================
def _get_rng(attrs):
    rng = attrs.get("_rng")
    if rng is None:
        rng = np.random.default_rng(attrs.get("seed"))
        attrs["_rng"] = rng
    return rng


def _random_uniform_fwd(i, a):
    rng = _get_rng(a)
    if i:
        shape = np.shape(i[0])[:a["ref_rank"]] if a.get("ref_rank") else np.shape(i[0])
    else:
        shape = a["shape"]
    return rng.uniform(a.get("low", 0.0), a.get("high", 1.0),
                       size=shape).astype(np.float32)


def _random_normal_fwd(i, a):
    rng = _get_rng(a)
    shape = np.shape(i[0]) if i else a["shape"]
    return (rng.standard_normal(size=shape) * a.get("stddev", 1.0)
            + a.get("mean", 0.0)).astype(np.float32)


register_op("random_uniform", _random_uniform_fwd, None,
            lambda shapes, a: (tuple(a["shape"]) if not shapes else
                               (shapes[0][:a["ref_rank"]] if a.get("ref_rank")
                                and shapes[0] is not None else shapes[0])),
            dtype_fn=_float_dtype, stateful=True)
register_op("random_normal", _random_normal_fwd, None,
            lambda shapes, a: tuple(a["shape"]) if not shapes else shapes[0],
            dtype_fn=_float_dtype, stateful=True)

register_op("zeros2d",
            lambda i, a: np.zeros((int(i[0]), a["cols"]), dtype=np.float32),
            None, lambda shapes, a: (None, a["cols"]), dtype_fn=_float_dtype)

# ======================= V-trace (IMPALA, Espeholt et al. 2018) ==============
def _vtrace_fwd(i, a):
    """Compute v-trace targets.

    Inputs: log_rhos (T, B), discounts (T, B), rewards (T, B),
    values (T, B), bootstrap_value (B,).
    Returns vs (which=0) or pg_advantages (which=1); both are
    no-gradient targets, matching the reference implementation.
    """
    log_rhos, discounts, rewards, values, bootstrap = [np.asarray(x) for x in i]
    clip_rho = a.get("clip_rho_threshold", 1.0)
    clip_pg_rho = a.get("clip_pg_rho_threshold", 1.0)
    rhos = np.exp(log_rhos)
    clipped_rhos = np.minimum(clip_rho, rhos) if clip_rho is not None else rhos
    cs = np.minimum(1.0, rhos)
    t_steps = values.shape[0]
    values_tp1 = np.concatenate([values[1:], bootstrap[None]], axis=0)
    deltas = clipped_rhos * (rewards + discounts * values_tp1 - values)
    acc = np.zeros_like(bootstrap, dtype=np.float32)
    vs_minus_v = np.zeros_like(values, dtype=np.float32)
    for t in range(t_steps - 1, -1, -1):
        acc = deltas[t] + discounts[t] * cs[t] * acc
        vs_minus_v[t] = acc
    vs = vs_minus_v + values
    if a["which"] == 0:
        return vs.astype(np.float32)
    vs_tp1 = np.concatenate([vs[1:], bootstrap[None]], axis=0)
    pg_rhos = (np.minimum(clip_pg_rho, rhos) if clip_pg_rho is not None
               else rhos)
    pg_adv = pg_rhos * (rewards + discounts * vs_tp1 - values)
    return pg_adv.astype(np.float32)


register_op("vtrace", _vtrace_fwd, None,
            lambda shapes, a: shapes[3], dtype_fn=_float_dtype)

# ======================= flat-parameter learner path ==========================
# ``flatcat`` coalesces the reverse pass's per-variable gradients into
# one flat float32 buffer with a SINGLE graph node regardless of how
# many variables feed it — the front half of the fused optimizer path.
def _flatcat_fwd(i, a):
    if len(i) == 1:
        return np.asarray(i[0], dtype=np.float32).reshape(-1)
    return np.concatenate(
        [np.asarray(x, dtype=np.float32).reshape(-1) for x in i])


def _flatcat_shape(shapes, attrs):
    total = 0
    for s in shapes:
        if s is None or any(d is None for d in s):
            return (None,)
        total += int(np.prod(s)) if s else 1
    return (total,)


register_op("flatcat", _flatcat_fwd, None, _flatcat_shape,
            dtype_fn=_float_dtype)


# Multi-tensor fused optimizer ops: ONE stateful node updates the whole
# parameter slab (plus its optimizer-slot slabs) in place from the flat
# gradient, replacing the per-variable chains of ~10+ nodes each. The
# slab handles travel in attrs like the assign/scatter family's
# ``var`` attr; kernels live in backend/kernels.py. Returns the slab
# size so the node has a value for control-dependency grouping.
def _fused_update_shape(shapes, attrs):
    return ()


def _fused_sgd_fwd(i, a):
    var = a["var"]
    mom = a.get("momentum_var")
    kernels.fused_sgd(i[0], var.value, a["lr"], a.get("momentum", 0.0),
                      mom.value if mom is not None else None)
    return np.asarray(var.value.size, dtype=np.int64)


def _fused_adam_fwd(i, a):
    var = a["var"]
    kernels.fused_adam(i[0], i[1], var.value, a["m"].value, a["v"].value,
                       a["lr"], a["beta1"], a["beta2"], a["epsilon"])
    return np.asarray(var.value.size, dtype=np.int64)


def _fused_rmsprop_fwd(i, a):
    var = a["var"]
    kernels.fused_rmsprop(i[0], var.value, a["ms"].value, a["lr"],
                          a["decay"], a["epsilon"])
    return np.asarray(var.value.size, dtype=np.int64)


register_op("fused_sgd", _fused_sgd_fwd, None, _fused_update_shape,
            dtype_fn=_int_dtype, stateful=True)
register_op("fused_adam", _fused_adam_fwd, None, _fused_update_shape,
            dtype_fn=_int_dtype, stateful=True)
register_op("fused_rmsprop", _fused_rmsprop_fwd, None, _fused_update_shape,
            dtype_fn=_int_dtype, stateful=True)


# ======================= python escape hatch ==================================
# TF-style py_func: wraps arbitrary Python callables as (stateful) graph
# nodes. Used for queue components and in-graph environment stepping
# (the IMPALA fused-stepping pattern from paper §5.1).
register_op("py_func", lambda i, a: a["fn"](*i), None,
            shape_fn=lambda shapes, a: a.get("shape"),
            dtype_fn=lambda dtypes, a: (np.dtype(a["dtype"])
                                        if a.get("dtype") is not None else None),
            stateful=True)
