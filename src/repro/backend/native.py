"""Native C codegen backend: whole-plan execution with zero Python dispatch.

``optimize="native"`` lowers a :class:`~repro.backend.compiler.CompiledPlan`
one level further: the slot-slab step list is split into *segments* —
maximal runs of steps whose ops fall inside the native vocabulary
(elementwise chains and fused groups, reductions, small matmuls, shape
copies, one-hot/gather/concat, and the multi-tensor fused optimizer ops
from the flat-parameter learner path) — and each segment is emitted as one
shape-specialized C function. A segment executes with a single foreign
call: every operand is a raw pointer in a per-segment pointer table, so
the Python interpreter is not entered between its steps at all. Steps
outside the vocabulary stay Python and bridge segments through the slab.

Design notes:

* **Lazy, feed-specialized builds.** Shapes are baked into the C source,
  so lowering happens at the first ``run()`` per feed-shape signature (a
  probe run records every step's shapes/dtypes and returns the correct
  fetch values). Up to :data:`_MAX_BUILDS` signatures are kept; beyond
  that, unseen signatures execute on the wrapped compiled plan.
* **Pointer table.** Entries are *static* (persistent per-step output
  buffers and contiguous constant copies, resolved once), *var* (live
  variable storage, re-resolved when :func:`repro.backend.variables
  .storage_epoch` changes), or *dyn* (slab values produced by Python
  steps or other segments, resolved per run behind a shape/dtype guard).
  A failed guard downgrades just that segment to its recorded Python
  steps for that run — downstream segments guard the same slots, so
  shape drift cascades correctly.
* **Caching.** The generated source is deterministic, and the compiled
  shared object is cached on disk keyed by the source's MD5, so repeat
  processes skip the C compiler entirely.
* **Graceful degradation.** No working C toolchain (or a failed
  compile) falls back to the ``"fused"``-level plan with a one-time
  warning; results are unchanged.
* **Numerics.** Native arithmetic follows NumPy's result dtypes but
  uses libm scalar kernels, so values match the interpreter to floating
  tolerance rather than bitwise (the parity matrix checks native cells
  with ``allclose``; the bitwise invariant is asserted at ``"basic"``).
  NaN propagation through ``maximum``/``minimum``/``relu`` follows C
  comparison semantics, not NumPy's NaN-poisoning.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
import time
import warnings
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.backend import variables
from repro.utils.errors import RLGraphError

# Feed-shape signatures lowered per plan before falling back to the
# wrapped compiled plan for unseen signatures.
_MAX_BUILDS = 4

# Matmuls up to this many multiply-adds are emitted as native loops;
# larger ones stay Python steps so they keep hitting BLAS.
_MATMUL_NATIVE_LIMIT = 1 << 16

_CFLAGS = ["-O3", "-fPIC", "-shared", "-ffp-contract=off", "-fno-math-errno"]


# ---------------------------------------------------------------------------
# Toolchain discovery
# ---------------------------------------------------------------------------
_TOOLCHAIN: Dict[str, Any] = {"checked": False, "cc": None}
_WARNED = {"toolchain": False, "compile": False}


def _probe_cc(cc: str) -> bool:
    """Verify ``cc`` can produce a loadable shared object."""
    try:
        with tempfile.TemporaryDirectory() as tmp:
            c_path = os.path.join(tmp, "probe.c")
            so_path = os.path.join(tmp, "probe.so")
            with open(c_path, "w") as fh:
                fh.write("int repro_native_probe(void) { return 42; }\n")
            res = subprocess.run(
                [cc, "-O1", "-fPIC", "-shared", c_path, "-o", so_path],
                capture_output=True, timeout=60)
            return res.returncode == 0 and os.path.exists(so_path)
    except Exception:
        return False


def find_cc() -> Optional[str]:
    """Path of a working C compiler (cached per process), or None."""
    if _TOOLCHAIN["checked"]:
        return _TOOLCHAIN["cc"]
    _TOOLCHAIN["checked"] = True
    candidates = []
    if os.environ.get("CC"):
        candidates.append(os.environ["CC"])
    candidates += ["cc", "gcc", "clang"]
    for cand in candidates:
        path = shutil.which(cand)
        if path and _probe_cc(path):
            _TOOLCHAIN["cc"] = path
            break
    return _TOOLCHAIN["cc"]


def toolchain_available() -> bool:
    return find_cc() is not None


def warn_no_toolchain() -> None:
    """One-time warning that ``optimize='native'`` degrades to ``'fused'``."""
    if not _WARNED["toolchain"]:
        _WARNED["toolchain"] = True
        warnings.warn(
            "optimize='native' requested but no C toolchain is available; "
            "executing with the 'fused' plan instead",
            RuntimeWarning, stacklevel=3)


def _warn_compile_failed() -> None:
    if not _WARNED["compile"]:
        _WARNED["compile"] = True
        warnings.warn(
            "native codegen failed to compile; executing with the 'fused' "
            "plan instead", RuntimeWarning, stacklevel=3)


def _cache_dir() -> str:
    path = os.environ.get("REPRO_NATIVE_CACHE")
    if not path:
        path = os.path.join(os.path.expanduser("~"), ".cache", "repro",
                            "native")
    os.makedirs(path, exist_ok=True)
    return path


# ---------------------------------------------------------------------------
# Shared-object build + load
# ---------------------------------------------------------------------------
class _SharedLib:
    """A loaded plan library: one ``void segN(char **)`` per segment.

    Prefers cffi (ABI mode, per-plan FFI instance so cdefs never clash
    across plans); falls back to ctypes.
    """

    def __init__(self, path: str, seg_names: List[str]):
        self.path = path
        self.fns: Dict[str, Any] = {}
        try:
            import cffi
            ffi = cffi.FFI()
            ffi.cdef("".join(f"void {n}(char **);" for n in seg_names))
            lib = ffi.dlopen(path)
            self._ffi, self._lib = ffi, lib
            for n in seg_names:
                self.fns[n] = getattr(lib, n)
            self.cast_ptr = lambda addr: ffi.cast("char **", addr)
        except Exception:
            import ctypes
            lib = ctypes.CDLL(path)
            self._lib = lib
            for n in seg_names:
                fn = getattr(lib, n)
                fn.argtypes = [ctypes.c_void_p]
                fn.restype = None
                self.fns[n] = fn
            self.cast_ptr = lambda addr: addr


def _build_library(source: str,
                   seg_names: List[str]) -> Tuple[Optional[_SharedLib], bool]:
    """Compile (or load from the disk cache) the plan library.

    Returns ``(lib_or_None, cache_hit)``.
    """
    cc = find_cc()
    if cc is None:
        return None, False
    digest = hashlib.md5(source.encode()).hexdigest()
    cache = _cache_dir()
    so_path = os.path.join(cache, f"plan_{digest}.so")
    hit = os.path.exists(so_path)
    if not hit:
        c_path = os.path.join(cache, f"plan_{digest}.c")
        tmp_so = f"{so_path}.tmp{os.getpid()}"
        try:
            with open(c_path, "w") as fh:
                fh.write(source)
            res = subprocess.run([cc] + _CFLAGS + [c_path, "-o", tmp_so,
                                                   "-lm"],
                                 capture_output=True, timeout=300)
            if res.returncode != 0:
                return None, False
            os.replace(tmp_so, so_path)  # concurrent builders race benignly
        except Exception:
            return None, False
    try:
        return _SharedLib(so_path, seg_names), hit
    except Exception:
        return None, hit


# ---------------------------------------------------------------------------
# Dtype / shape helpers
# ---------------------------------------------------------------------------
_CTYPES = {
    np.dtype(np.float32): "float",
    np.dtype(np.float64): "double",
    np.dtype(np.int64): "long long",
    np.dtype(np.int32): "int",
    np.dtype(np.bool_): "unsigned char",
    np.dtype(np.uint8): "unsigned char",
}


def _ct(dtype) -> Optional[str]:
    try:
        return _CTYPES.get(np.dtype(dtype))
    except TypeError:
        return None


def _meta(value):
    """(shape, dtype, c_contiguous) for an ndarray, else None.

    NumPy scalars (what 0-d reductions and 0-d arithmetic return) count
    as 0-d arrays — the pointer-table resolver materializes them."""
    if isinstance(value, np.ndarray):
        return (value.shape, value.dtype, value.flags.c_contiguous)
    if isinstance(value, np.generic):
        return ((), value.dtype, True)
    return None


def _numel(shape) -> int:
    return int(np.prod(shape, dtype=np.int64))


def _estrides(shape) -> List[int]:
    """C-order element strides."""
    out = [0] * len(shape)
    acc = 1
    for i in range(len(shape) - 1, -1, -1):
        out[i] = acc
        acc *= int(shape[i])
    return out


def _bstrides(shape, out_shape) -> Optional[List[int]]:
    """Element strides of ``shape`` broadcast (right-aligned) against
    ``out_shape``; 0 on broadcast dims; None if not broadcastable."""
    shape = tuple(int(d) for d in shape)
    out_shape = tuple(int(d) for d in out_shape)
    if len(shape) > len(out_shape):
        return None
    es = _estrides(shape)
    pad = len(out_shape) - len(shape)
    full = [0] * pad
    for i, d in enumerate(shape):
        if d == out_shape[pad + i]:
            full.append(0 if d == 1 else es[i])
        elif d == 1:
            full.append(0)
        else:
            return None
    return full


def _flit(value, double: bool = False) -> str:
    """C literal for a float constant (f32 by default, baked exactly)."""
    if double:
        text = f"{float(value):.17g}"
        suffix = ""
    else:
        text = f"{float(np.float32(value)):.9g}"
        suffix = "f"
    if "." not in text and "e" not in text and "n" not in text:
        text += ".0"
    return text + suffix


def _lit(value, ctype: str) -> str:
    if ctype == "float":
        return _flit(value)
    if ctype == "double":
        return _flit(value, double=True)
    suffix = "LL" if ctype == "long long" else ""
    return f"{int(value)}{suffix}"


def _label(name: str) -> str:
    """A step name made safe for a C comment."""
    return str(name).replace("/*", "").replace("*/", "")


# ---------------------------------------------------------------------------
# Elementwise expression table
# ---------------------------------------------------------------------------
# Ops the C emitter can express as one scalar expression (the native
# mirror of the compiler's FUSABLE set minus ``mod``, whose np.mod sign
# semantics differ from C fmod).
_EW_OPS = frozenset({
    "add", "sub", "mul", "div", "neg", "power", "exp", "log", "sqrt",
    "square", "abs", "sign", "floor", "maximum", "minimum", "clip",
    "relu", "tanh", "sigmoid", "softplus", "atanh",
    "equal", "not_equal", "greater", "greater_equal", "less", "less_equal",
    "logical_and", "logical_or", "logical_not",
    "cast", "where", "identity", "stop_gradient", "ones_like",
})

_FLOAT_CTS = ("float", "double")


def _math(name: str, ctype: str) -> str:
    return name + ("f" if ctype == "float" else "")


def _is_number(value) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating)) \
        and not isinstance(value, bool)


def _member_expr(op: str, attrs: Dict[str, Any], args: List[str],
                 in_dts: List[Any], out_dt) -> Optional[str]:
    """C scalar expression for one elementwise op, or None."""
    ct = _ct(out_dt)
    if ct is None:
        return None

    def c(expr: str) -> str:
        return f"({ct})({expr})"

    if op in ("add", "sub", "mul"):
        sym = {"add": "+", "sub": "-", "mul": "*"}[op]
        return f"({c(args[0])} {sym} {c(args[1])})"
    if op == "div":
        if all(np.issubdtype(np.dtype(d), np.integer) for d in in_dts):
            # np int/int -> float64 division then astype(float32).
            return f"(float)((double)({args[0]}) / (double)({args[1]}))"
        if ct not in _FLOAT_CTS:
            return None
        return f"({c(args[0])} / {c(args[1])})"
    if op == "neg":
        return f"(-{c(args[0])})"
    if op == "power":
        p = attrs.get("p")
        if not _is_number(p):
            return None
        if float(p) == 2.0:
            return f"({c(args[0])} * {c(args[0])})"
        if ct not in _FLOAT_CTS:
            return None
        return f"{_math('pow', ct)}({c(args[0])}, {_lit(p, ct)})"
    if op in ("exp", "log", "sqrt", "tanh", "atanh"):
        if ct not in _FLOAT_CTS:
            return None
        return f"{_math(op, ct)}({c(args[0])})"
    if op == "square":
        return f"({c(args[0])} * {c(args[0])})"
    if op == "abs":
        if ct in _FLOAT_CTS:
            return f"{_math('fabs', ct)}({c(args[0])})"
        return f"({c(args[0])} < 0 ? -{c(args[0])} : {c(args[0])})"
    if op == "sign":
        return (f"({c(args[0])} > 0 ? ({ct})1 : "
                f"({c(args[0])} < 0 ? ({ct})-1 : ({ct})0))")
    if op == "floor":
        if ct in _FLOAT_CTS:
            return f"{_math('floor', ct)}({c(args[0])})"
        return c(args[0])
    if op in ("maximum", "minimum"):
        sym = ">" if op == "maximum" else "<"
        return (f"({c(args[0])} {sym} {c(args[1])} ? "
                f"{c(args[0])} : {c(args[1])})")
    if op == "clip":
        lo, hi = attrs.get("lo"), attrs.get("hi")
        if not (_is_number(lo) and _is_number(hi)):
            return None
        lo_l, hi_l = _lit(lo, ct), _lit(hi, ct)
        return (f"({c(args[0])} < {lo_l} ? {lo_l} : "
                f"({c(args[0])} > {hi_l} ? {hi_l} : {c(args[0])}))")
    if op == "relu":
        return f"({c(args[0])} > 0 ? {c(args[0])} : ({ct})0)"
    if op == "sigmoid":
        if ct not in _FLOAT_CTS:
            return None
        one = _lit(1, ct) if ct not in _FLOAT_CTS else \
            ("1.0f" if ct == "float" else "1.0")
        return f"({one} / ({one} + {_math('exp', ct)}(-{c(args[0])})))"
    if op == "softplus":
        if ct not in _FLOAT_CTS:
            return None
        e, l1p = _math("exp", ct), _math("log1p", ct)
        x = c(args[0])
        return f"({x} > 0 ? {x} + {l1p}({e}(-{x})) : {l1p}({e}({x})))"
    if op in ("equal", "not_equal", "greater", "greater_equal", "less",
              "less_equal"):
        try:
            common = _ct(np.result_type(*[np.dtype(d) for d in in_dts]))
        except TypeError:
            common = None
        if common is None:
            return None
        sym = {"equal": "==", "not_equal": "!=", "greater": ">",
               "greater_equal": ">=", "less": "<", "less_equal": "<="}[op]
        return (f"(({common})({args[0]}) {sym} ({common})({args[1]}))")
    if op == "logical_and":
        return f"((({args[0]}) != 0) && (({args[1]}) != 0))"
    if op == "logical_or":
        return f"((({args[0]}) != 0) || (({args[1]}) != 0))"
    if op == "logical_not":
        return f"(({args[0]}) == 0)"
    if op == "cast":
        if np.dtype(out_dt) == np.dtype(np.bool_):
            return f"(({args[0]}) != 0)"
        return c(args[0])
    if op == "where":
        return f"(({args[0]}) != 0 ? {c(args[1])} : {c(args[2])})"
    if op in ("identity", "stop_gradient"):
        return c(args[0])
    if op == "ones_like":
        return f"({ct})1"
    return None


# ---------------------------------------------------------------------------
# C emission
# ---------------------------------------------------------------------------
class _W:
    """Line writer with a per-block unique-id counter (deterministic, so
    the generated source — and the disk-cache key — is stable)."""

    def __init__(self):
        self.lines: List[str] = []
        self._uid = 0

    def uid(self) -> int:
        self._uid += 1
        return self._uid

    def __call__(self, line: str = ""):
        self.lines.append(line)


def _emit_elementwise(w: _W, name: str, members, ext_metas, arg_idx,
                      out_idx: int, out_meta) -> None:
    """One loop nest computing a chain of elementwise members with scalar
    temporaries (the native analogue of the fused kernel). Broadcasting
    is stride-0 indexing; a member whose natural shape is smaller than
    the final output is recomputed per broadcast position, which is
    value-identical for pure elementwise ops."""
    out_shape = tuple(int(d) for d in out_meta[0])
    out_ct = _ct(out_meta[1])
    size = _numel(out_shape)
    u = w.uid()
    data = [k for k, idx in enumerate(arg_idx) if idx is not None]
    w(f"  {{ /* {_label(name)} */")
    for k in data:
        ct = _ct(ext_metas[k][1])
        w(f"  const {ct} *p{u}_{k} = (const {ct} *)B[{arg_idx[k]}];")
    w(f"  {out_ct} *o{u} = ({out_ct} *)B[{out_idx}];")

    def body(indent: str, load_of, out_ix: str):
        for m_i, m in enumerate(members):
            args, dts = [], []
            for kind, r in m["refs"]:
                if kind == "arg":
                    args.append(load_of(r))
                    dts.append(ext_metas[r][1] if ext_metas[r] is not None
                               else np.dtype(np.float32))
                else:
                    args.append(f"t{u}_{r}")
                    dts.append(members[r]["dtype"])
            expr = _member_expr(m["op"], m["attrs"], args, dts, m["dtype"])
            w(f"{indent}const {_ct(m['dtype'])} t{u}_{m_i} = {expr};")
        w(f"{indent}o{u}[{out_ix}] = t{u}_{len(members) - 1};")

    flat = all(
        tuple(int(d) for d in ext_metas[k][0]) == out_shape
        or _numel(ext_metas[k][0]) == 1
        for k in data)
    if flat:
        def load(k):
            if arg_idx[k] is None:
                return "0"
            if tuple(int(d) for d in ext_metas[k][0]) == out_shape:
                return f"p{u}_{k}[i{u}]"
            return f"p{u}_{k}[0]"
        w(f"  for (long long i{u} = 0; i{u} < {size}; i{u}++) {{")
        body("    ", load, f"i{u}")
        w("  }")
    else:
        strides = {k: _bstrides(ext_metas[k][0], out_shape) for k in data}

        def load(k):
            if arg_idx[k] is None:
                return "0"
            terms = [f"i{u}_{d} * {s}" for d, s in enumerate(strides[k])
                     if s != 0]
            return f"p{u}_{k}[{' + '.join(terms) or '0'}]"
        indent = "  "
        w(f"  long long io{u} = 0;")
        for d, dim in enumerate(out_shape):
            w(f"{indent}for (long long i{u}_{d} = 0; i{u}_{d} < {dim}; "
              f"i{u}_{d}++) {{")
            indent += "  "
        body(indent, load, f"io{u}++")
        for _ in out_shape:
            indent = indent[:-2]
            w(f"{indent}}}")
    w("  }")


def _emit_reduce(w: _W, name: str, in_meta, out_meta, axes, mode: str,
                 arg_i: int, out_i: int) -> None:
    """sum/mean/max/min over ``axes`` of a C-contiguous input; kept dims
    iterate outermost so the output writes linearly."""
    shape = tuple(int(d) for d in in_meta[0])
    in_ct = _ct(in_meta[1])
    out_ct = _ct(out_meta[1])
    es = _estrides(shape)
    kept = [d for d in range(len(shape)) if d not in axes]
    red = [d for d in range(len(shape)) if d in axes]
    float_acc = np.issubdtype(np.dtype(out_meta[1]), np.floating)
    acc_ct = "double" if float_acc else "long long"
    u = w.uid()
    w(f"  {{ /* {_label(name)} */")
    w(f"  const {in_ct} *p{u} = (const {in_ct} *)B[{arg_i}];")
    w(f"  {out_ct} *o{u} = ({out_ct} *)B[{out_i}];")
    w(f"  long long oc{u} = 0;")
    indent = "  "
    for d in kept:
        w(f"{indent}for (long long i{u}_{d} = 0; i{u}_{d} < {shape[d]}; "
          f"i{u}_{d}++) {{")
        indent += "  "
    if mode in ("sum", "mean"):
        w(f"{indent}{acc_ct} acc{u} = 0;")
    elif mode == "max":
        w(f"{indent}{acc_ct} acc{u} = "
          f"{'-INFINITY' if float_acc else 'LLONG_MIN'};")
    else:
        w(f"{indent}{acc_ct} acc{u} = "
          f"{'INFINITY' if float_acc else 'LLONG_MAX'};")
    for d in red:
        w(f"{indent}for (long long i{u}_{d} = 0; i{u}_{d} < {shape[d]}; "
          f"i{u}_{d}++) {{")
        indent += "  "
    idx = " + ".join(f"i{u}_{d} * {es[d]}" for d in range(len(shape)))
    v = f"({acc_ct})p{u}[{idx or '0'}]"
    if mode in ("sum", "mean"):
        w(f"{indent}acc{u} += {v};")
    elif mode == "max":
        w(f"{indent}if ({v} > acc{u}) acc{u} = {v};")
    else:
        w(f"{indent}if ({v} < acc{u}) acc{u} = {v};")
    for _ in red:
        indent = indent[:-2]
        w(f"{indent}}}")
    if mode == "mean":
        count = max(_numel([shape[d] for d in red]), 1)
        w(f"{indent}o{u}[oc{u}++] = ({out_ct})(acc{u} / {count}.0);")
    else:
        w(f"{indent}o{u}[oc{u}++] = ({out_ct})acc{u};")
    for _ in kept:
        indent = indent[:-2]
        w(f"{indent}}}")
    w("  }")


def _emit_argmax(w: _W, name: str, in_meta, axis: Optional[int],
                 arg_i: int, out_i: int) -> None:
    shape = tuple(int(d) for d in in_meta[0])
    in_ct = _ct(in_meta[1])
    u = w.uid()
    w(f"  {{ /* {_label(name)} */")
    w(f"  const {in_ct} *p{u} = (const {in_ct} *)B[{arg_i}];")
    w(f"  long long *o{u} = (long long *)B[{out_i}];")
    if axis is None:
        size = _numel(shape)
        w(f"  {in_ct} best{u} = p{u}[0]; long long bi{u} = 0;")
        w(f"  for (long long i{u} = 1; i{u} < {size}; i{u}++) {{")
        w(f"    if (p{u}[i{u}] > best{u}) {{ best{u} = p{u}[i{u}]; "
          f"bi{u} = i{u}; }}")
        w("  }")
        w(f"  o{u}[0] = bi{u};")
        w("  }")
        return
    es = _estrides(shape)
    kept = [d for d in range(len(shape)) if d != axis]
    w(f"  long long oc{u} = 0;")
    indent = "  "
    for d in kept:
        w(f"{indent}for (long long i{u}_{d} = 0; i{u}_{d} < {shape[d]}; "
          f"i{u}_{d}++) {{")
        indent += "  "
    base = " + ".join(f"i{u}_{d} * {es[d]}" for d in kept)
    base = base or "0"
    w(f"{indent}{in_ct} best{u} = p{u}[{base}]; long long bi{u} = 0;")
    w(f"{indent}for (long long j{u} = 1; j{u} < {shape[axis]}; j{u}++) {{")
    w(f"{indent}  {in_ct} v{u} = p{u}[{base} + j{u} * {es[axis]}];")
    w(f"{indent}  if (v{u} > best{u}) {{ best{u} = v{u}; bi{u} = j{u}; }}")
    w(f"{indent}}}")
    w(f"{indent}o{u}[oc{u}++] = bi{u};")
    for _ in kept:
        indent = indent[:-2]
        w(f"{indent}}}")
    w("  }")


def _emit_matmul(w: _W, name: str, a_meta, b_meta, out_meta,
                 a_i: int, b_i: int, out_i: int) -> None:
    m, k = (int(d) for d in a_meta[0])
    _, n = (int(d) for d in b_meta[0])
    ct = _ct(out_meta[1])
    u = w.uid()
    w(f"  {{ /* {_label(name)} */")
    w(f"  const {ct} *a{u} = (const {ct} *)B[{a_i}];")
    w(f"  const {ct} *b{u} = (const {ct} *)B[{b_i}];")
    w(f"  {ct} *o{u} = ({ct} *)B[{out_i}];")
    w(f"  for (long long i = 0; i < {m}; i++) {{")
    w(f"    for (long long j = 0; j < {n}; j++) o{u}[i * {n} + j] = 0;")
    w(f"    for (long long p = 0; p < {k}; p++) {{")
    w(f"      const {ct} av = a{u}[i * {k} + p];")
    w(f"      for (long long j = 0; j < {n}; j++) "
      f"o{u}[i * {n} + j] += av * b{u}[p * {n} + j];")
    w("    }")
    w("  }")
    w("  }")


def _emit_copy(w: _W, name: str, nbytes: int, arg_i: int,
               out_i: int) -> None:
    if nbytes:
        w(f"  memcpy(B[{out_i}], B[{arg_i}], {nbytes}); "
          f"/* {_label(name)} */")


def _emit_transpose(w: _W, name: str, in_meta, out_meta, perm,
                    arg_i: int, out_i: int) -> None:
    in_shape = tuple(int(d) for d in in_meta[0])
    out_shape = tuple(int(d) for d in out_meta[0])
    ct = _ct(in_meta[1])
    ies = _estrides(in_shape)
    u = w.uid()
    w(f"  {{ /* {_label(name)} */")
    w(f"  const {ct} *p{u} = (const {ct} *)B[{arg_i}];")
    w(f"  {ct} *o{u} = ({ct} *)B[{out_i}];")
    w(f"  long long io{u} = 0;")
    indent = "  "
    for d, dim in enumerate(out_shape):
        w(f"{indent}for (long long i{u}_{d} = 0; i{u}_{d} < {dim}; "
          f"i{u}_{d}++) {{")
        indent += "  "
    idx = " + ".join(f"i{u}_{d} * {ies[perm[d]]}"
                     for d in range(len(out_shape)))
    w(f"{indent}o{u}[io{u}++] = p{u}[{idx or '0'}];")
    for _ in out_shape:
        indent = indent[:-2]
        w(f"{indent}}}")
    w("  }")


def _emit_one_hot(w: _W, name: str, idx_meta, out_meta, depth: int,
                  arg_i: int, out_i: int) -> None:
    n = _numel(idx_meta[0])
    idx_ct = _ct(idx_meta[1])
    out_ct = _ct(out_meta[1])
    nbytes = _numel(out_meta[0]) * np.dtype(out_meta[1]).itemsize
    u = w.uid()
    w(f"  {{ /* {_label(name)} */")
    w(f"  const {idx_ct} *p{u} = (const {idx_ct} *)B[{arg_i}];")
    w(f"  {out_ct} *o{u} = ({out_ct} *)B[{out_i}];")
    w(f"  memset(o{u}, 0, {nbytes});")
    w(f"  for (long long i{u} = 0; i{u} < {n}; i{u}++) {{")
    w(f"    long long v{u} = (long long)p{u}[i{u}];")
    w(f"    if (v{u} >= 0 && v{u} < {depth}) "
      f"o{u}[i{u} * {depth} + v{u}] = ({out_ct})1;")
    w("  }")
    w("  }")


def _emit_gather(w: _W, name: str, params_meta, idx_meta,
                 p_i: int, i_i: int, out_i: int) -> None:
    # Out-of-range indices clamp (np.take would raise; plans only issue
    # in-range reads) — keeps the C side memory-safe without branching
    # back to Python.
    n_rows = int(params_meta[0][0])
    row = (_numel(params_meta[0][1:])
           * np.dtype(params_meta[1]).itemsize)
    n_idx = _numel(idx_meta[0])
    idx_ct = _ct(idx_meta[1])
    u = w.uid()
    w(f"  {{ /* {_label(name)} */")
    w(f"  const char *p{u} = (const char *)B[{p_i}];")
    w(f"  const {idx_ct} *x{u} = (const {idx_ct} *)B[{i_i}];")
    w(f"  char *o{u} = (char *)B[{out_i}];")
    w(f"  for (long long i{u} = 0; i{u} < {n_idx}; i{u}++) {{")
    w(f"    long long v{u} = (long long)x{u}[i{u}];")
    w(f"    if (v{u} < 0) v{u} = 0;")
    w(f"    if (v{u} >= {n_rows}) v{u} = {n_rows - 1};")
    w(f"    memcpy(o{u} + i{u} * {row}, p{u} + v{u} * {row}, {row});")
    w("  }")
    w("  }")


def _emit_concat(w: _W, name: str, in_metas, out_meta, axis: int,
                 arg_idx, out_i: int) -> None:
    esize = np.dtype(out_meta[1]).itemsize
    out_shape = tuple(int(d) for d in out_meta[0])
    outer = _numel(out_shape[:axis])
    out_row = _numel(out_shape[axis:]) * esize
    u = w.uid()
    w(f"  {{ /* {_label(name)} */")
    w(f"  char *o{u} = (char *)B[{out_i}];")
    off = 0
    for t, meta in enumerate(in_metas):
        in_row = _numel(tuple(meta[0])[axis:]) * esize
        if in_row:
            w(f"  for (long long r{u} = 0; r{u} < {outer}; r{u}++)")
            w(f"    memcpy(o{u} + r{u} * {out_row} + {off}, "
              f"(const char *)B[{arg_idx[t]}] + r{u} * {in_row}, {in_row});")
        off += in_row
    w("  }")


def _emit_flatcat(w: _W, name: str, in_metas, arg_idx, out_i: int) -> None:
    u = w.uid()
    w(f"  {{ /* {_label(name)} */")
    w(f"  char *o{u} = (char *)B[{out_i}];")
    off = 0
    for t, meta in enumerate(in_metas):
        nbytes = _numel(meta[0]) * np.dtype(meta[1]).itemsize
        if nbytes:
            w(f"  memcpy(o{u} + {off}, B[{arg_idx[t]}], {nbytes});")
        off += nbytes
    w("  }")


def _emit_fused_sgd(w: _W, name: str, n: int, lr, momentum,
                    g_i: int, p_i: int, m_i: Optional[int]) -> None:
    nlr = _flit(np.float32(-lr))
    u = w.uid()
    w(f"  {{ /* {_label(name)} */")
    w(f"  const float *g{u} = (const float *)B[{g_i}];")
    w(f"  float *p{u} = (float *)B[{p_i}];")
    if m_i is not None:
        mom = _flit(np.float32(momentum))
        w(f"  float *m{u} = (float *)B[{m_i}];")
        w(f"  for (long long i{u} = 0; i{u} < {n}; i{u}++) {{")
        w(f"    const float nm{u} = {mom} * m{u}[i{u}] + g{u}[i{u}];")
        w(f"    m{u}[i{u}] = nm{u};")
        w(f"    p{u}[i{u}] += {nlr} * nm{u};")
        w("  }")
    else:
        w(f"  for (long long i{u} = 0; i{u} < {n}; i{u}++) "
          f"p{u}[i{u}] += {nlr} * g{u}[i{u}];")
    w("  }")


def _emit_fused_adam(w: _W, name: str, n: int, lr, beta1, beta2, epsilon,
                     g_i: int, t_i: int, t_ct: str, p_i: int, m_i: int,
                     v_i: int) -> None:
    # Mirrors kernels.fused_adam float32-for-float32 (same beta^t via
    # exp(t*log(beta)), same 1e-8 floor); -ffp-contract=off keeps the
    # per-op rounding comparable to NumPy's.
    b1, b2 = _flit(np.float32(beta1)), _flit(np.float32(beta2))
    ob1 = _flit(np.float32(1.0 - beta1))
    ob2 = _flit(np.float32(1.0 - beta2))
    lb1 = _flit(np.float32(np.log(beta1)))
    lb2 = _flit(np.float32(np.log(beta2)))
    nlr = _flit(np.float32(-lr))
    eps = _flit(np.float32(epsilon))
    u = w.uid()
    w(f"  {{ /* {_label(name)} */")
    w(f"  const float *g{u} = (const float *)B[{g_i}];")
    w(f"  const {t_ct} *t{u} = (const {t_ct} *)B[{t_i}];")
    w(f"  float *p{u} = (float *)B[{p_i}];")
    w(f"  float *m{u} = (float *)B[{m_i}];")
    w(f"  float *v{u} = (float *)B[{v_i}];")
    w(f"  const float tf{u} = (float)t{u}[0];")
    w(f"  float bc1{u} = 1.0f - expf(tf{u} * {lb1});")
    w(f"  float bc2{u} = 1.0f - expf(tf{u} * {lb2});")
    w(f"  if (bc1{u} < 1e-08f) bc1{u} = 1e-08f;")
    w(f"  if (bc2{u} < 1e-08f) bc2{u} = 1e-08f;")
    w(f"  for (long long i{u} = 0; i{u} < {n}; i{u}++) {{")
    w(f"    const float gv{u} = g{u}[i{u}];")
    w(f"    const float nm{u} = {b1} * m{u}[i{u}] + {ob1} * gv{u};")
    w(f"    const float nv{u} = {b2} * v{u}[i{u}] + {ob2} * (gv{u} * gv{u});")
    w(f"    const float mh{u} = nm{u} / bc1{u};")
    w(f"    const float vh{u} = nv{u} / bc2{u};")
    w(f"    p{u}[i{u}] += {nlr} * (mh{u} / (sqrtf(vh{u}) + {eps}));")
    w(f"    m{u}[i{u}] = nm{u};")
    w(f"    v{u}[i{u}] = nv{u};")
    w("  }")
    w("  }")


def _emit_fused_rmsprop(w: _W, name: str, n: int, lr, decay, epsilon,
                        g_i: int, p_i: int, s_i: int) -> None:
    dec = _flit(np.float32(decay))
    odec = _flit(np.float32(1.0 - decay))
    nlr = _flit(np.float32(-lr))
    eps = _flit(np.float32(epsilon))
    u = w.uid()
    w(f"  {{ /* {_label(name)} */")
    w(f"  const float *g{u} = (const float *)B[{g_i}];")
    w(f"  float *p{u} = (float *)B[{p_i}];")
    w(f"  float *s{u} = (float *)B[{s_i}];")
    w(f"  for (long long i{u} = 0; i{u} < {n}; i{u}++) {{")
    w(f"    const float gv{u} = g{u}[i{u}];")
    w(f"    const float ns{u} = {dec} * s{u}[i{u}] + {odec} * (gv{u} * gv{u});")
    w(f"    p{u}[i{u}] += {nlr} * (gv{u} / (sqrtf(ns{u}) + {eps}));")
    w(f"    s{u}[i{u}] = ns{u};")
    w("  }")
    w("  }")


# ---------------------------------------------------------------------------
# Step classification (native vocabulary)
# ---------------------------------------------------------------------------
_COPY_OPS = frozenset({"reshape", "reshape_like", "squeeze", "expand_dims",
                       "anchor"})
_REDUCE_MODES = {"reduce_sum": "sum", "reduce_mean": "mean",
                 "reduce_max": "max", "reduce_min": "min"}
# A one-C-step segment is only worth a foreign call when the step does
# the work of many interpreter steps.
_SINGLETON_OK = frozenset({"fused", "adam", "sgd", "rmsprop"})


def _reduce_axes(shape, axis) -> Tuple[int, ...]:
    nd = len(shape)
    if axis is None:
        return tuple(range(nd))
    if isinstance(axis, (int, np.integer)):
        return (int(axis) % nd,)
    return tuple(sorted(int(x) % nd for x in axis))


def _synthetic_members(step, out_dt):
    """A standalone elementwise op as a one-member fused group."""
    refs = [("arg", k) for k in range(len(step.arg_slots))]
    return [(step.op, None, step.attrs, refs)], [np.dtype(out_dt)]


def _ew_args(instructions, member_dts, in_metas, out_meta):
    """Validate an elementwise chain for C emission.

    Returns ``(data_args, shape_only_args)`` (external arg positions
    that are read vs. only shape-inspected), or None if any member falls
    outside the expression table or an operand can't be indexed.
    """
    if out_meta is None or _ct(out_meta[1]) is None:
        return None
    out_shape = out_meta[0]
    data, shape_only = set(), set()
    for m_i, (mop, _fwd, mattrs, refs) in enumerate(instructions):
        if _ct(member_dts[m_i]) is None:
            return None
        dts = []
        for kind, r in refs:
            if kind == "arg":
                meta = in_metas[r]
                if meta is None:
                    return None
                if mop == "ones_like":
                    shape_only.add(r)
                else:
                    data.add(r)
                    if (_ct(meta[1]) is None
                            or _bstrides(meta[0], out_shape) is None):
                        return None
                dts.append(meta[1])
            else:
                dts.append(member_dts[r])
        if _member_expr(mop, mattrs, ["x"] * len(refs), dts,
                        member_dts[m_i]) is None:
            return None
    return sorted(data), sorted(shape_only - data)


def _bcast_expanded(g_shape, out_shape, attrs):
    """The post-``expand_dims`` shape ``broadcast_like`` feeds into
    ``broadcast_to`` (same element order as the raw input), or None."""
    nd = len(out_shape)
    axis = attrs.get("axis")
    keepdims = attrs.get("keepdims", False)
    g_shape = tuple(int(d) for d in g_shape)
    if not keepdims and axis is not None:
        if isinstance(axis, (int, np.integer)):
            axes: Tuple = (int(axis),)
        elif isinstance(axis, (tuple, list)):
            axes = tuple(int(x) for x in axis)
        else:
            return None
        exp = list(g_shape)
        for ax in sorted(x % nd for x in axes):
            if ax > len(exp):
                return None
            exp.insert(ax, 1)
    elif not keepdims and axis is None:
        if _numel(g_shape) != 1:
            return None
        exp = [1] * nd
    else:
        exp = list(g_shape)
    if len(exp) != nd:
        return None
    for d, od in zip(exp, out_shape):
        if d != int(od) and d != 1:
            return None
    return tuple(exp)


def _native_kind(step, rec) -> Optional[str]:
    """Native-vocabulary tag for a step given its probed metadata, or
    None if the step must stay a Python step."""
    in_metas, out_meta, member_dts = rec
    op = step.op
    a = step.attrs
    if op == "read_var":
        if (out_meta is not None and out_meta[2]
                and _ct(out_meta[1]) is not None):
            return "ptr"
        return None
    if op in ("size_of", "shape_of"):
        if in_metas and in_metas[0] is not None and out_meta is not None:
            return "const"
        return None
    if op == "fused":
        if member_dts is None or out_meta is None:
            return None
        if _ew_args(step.instructions, member_dts, in_metas,
                    out_meta) is None:
            return None
        return "fused"
    if out_meta is None:
        return None
    if op in _EW_OPS:
        instrs, dts = _synthetic_members(step, out_meta[1])
        if _ew_args(instrs, dts, in_metas, out_meta) is None:
            return None
        return "ew"
    if op in _COPY_OPS:
        m0 = in_metas[0] if in_metas else None
        if (m0 is not None and np.dtype(m0[1]) == np.dtype(out_meta[1])
                and _numel(m0[0]) == _numel(out_meta[0])):
            return "copy"
        return None
    if op == "transpose":
        m0 = in_metas[0]
        perm = a.get("perm")
        if (m0 is not None and _ct(m0[1]) is not None and perm is not None
                and len(perm) == len(m0[0])):
            return "transpose"
        return None
    if op == "matmul":
        ma, mb = in_metas
        if (ma is not None and mb is not None
                and len(ma[0]) == 2 and len(mb[0]) == 2
                and len(out_meta[0]) == 2
                and ma[1] == mb[1] == out_meta[1]
                and _ct(ma[1]) in _FLOAT_CTS
                and _numel(ma[0]) * int(mb[0][1]) <= _MATMUL_NATIVE_LIMIT):
            return "matmul"
        return None
    if op in _REDUCE_MODES:
        m0 = in_metas[0]
        if m0 is None or _ct(m0[1]) is None or _ct(out_meta[1]) is None:
            return None
        axes = _reduce_axes(m0[0], a.get("axis"))
        if not axes:
            return None
        mode = _REDUCE_MODES[op]
        if mode in ("max", "min") and _numel(m0[0]) == 0:
            return None
        if mode == "mean" and _numel([m0[0][d] for d in axes]) == 0:
            return None
        return "reduce"
    if op == "argmax":
        m0 = in_metas[0]
        if m0 is None or _ct(m0[1]) is None or _numel(m0[0]) == 0:
            return None
        ax = a.get("axis")
        if ax is not None and not isinstance(ax, (int, np.integer)):
            return None
        if np.dtype(out_meta[1]) != np.dtype(np.int64):
            return None
        return "argmax"
    if op == "unbroadcast_like_op":
        m0 = in_metas[0]
        if m0 is None or _ct(m0[1]) is None or m0[1] != out_meta[1]:
            return None
        gin = tuple(int(d) for d in m0[0])
        tgt = tuple(int(d) for d in out_meta[0])
        if gin == tgt:
            return "copy"
        pad = len(gin) - len(tgt)
        if pad < 0:
            return None
        if any(t != gin[pad + i] and t != 1 for i, t in enumerate(tgt)):
            return None
        return "unbroadcast"
    if op == "broadcast_like":
        m0 = in_metas[0]
        if (m0 is not None and _ct(m0[1]) is not None
                and m0[1] == out_meta[1]
                and _bcast_expanded(m0[0], out_meta[0], a) is not None):
            return "bcast"
        return None
    if op == "one_hot":
        m0 = in_metas[0]
        depth = a.get("depth")
        if (m0 is not None and _ct(m0[1]) is not None
                and _ct(out_meta[1]) is not None
                and isinstance(depth, (int, np.integer)) and int(depth) > 0):
            return "one_hot"
        return None
    if op == "gather":
        mp, mi = in_metas
        if (mp is not None and mi is not None and len(mp[0]) >= 1
                and int(mp[0][0]) > 0 and _ct(mi[1]) is not None):
            return "gather"
        return None
    if op == "concat":
        if not in_metas or any(m is None for m in in_metas):
            return None
        nd = len(out_meta[0])
        ax = a.get("axis", 0)
        if nd == 0 or not isinstance(ax, (int, np.integer)):
            return None
        if any(np.dtype(m[1]) != np.dtype(out_meta[1]) or len(m[0]) != nd
               for m in in_metas):
            return None
        return "concat"
    if op == "flatcat":
        if in_metas and all(m is not None
                            and np.dtype(m[1]) == np.dtype(np.float32)
                            for m in in_metas):
            return "flatcat"
        return None
    if op in ("fused_sgd", "fused_adam", "fused_rmsprop"):
        g = in_metas[0] if in_metas else None
        if g is None or np.dtype(g[1]) != np.dtype(np.float32):
            return None
        arrs = [getattr(a.get("var"), "value", None)]
        if op == "fused_adam":
            if (len(in_metas) < 2 or in_metas[1] is None
                    or np.dtype(in_metas[1][1]) not in (
                        np.dtype(np.float32), np.dtype(np.int64))
                    or _numel(in_metas[1][0]) != 1):
                return None
            if not all(_is_number(a.get(key))
                       for key in ("lr", "beta1", "beta2", "epsilon")):
                return None
            if not (0.0 < float(a["beta1"]) < 1.0
                    and 0.0 < float(a["beta2"]) < 1.0):
                return None
            arrs += [getattr(a.get("m"), "value", None),
                     getattr(a.get("v"), "value", None)]
        elif op == "fused_rmsprop":
            if not all(_is_number(a.get(key))
                       for key in ("lr", "decay", "epsilon")):
                return None
            arrs.append(getattr(a.get("ms"), "value", None))
        else:
            mom = a.get("momentum", 0.0)
            if not _is_number(a.get("lr")) or not _is_number(mom):
                return None
            if mom:
                arrs.append(getattr(a.get("momentum_var"), "value", None))
        n = _numel(g[0])
        for arr in arrs:
            if not (isinstance(arr, np.ndarray) and arr.dtype == np.float32
                    and arr.flags.c_contiguous and arr.size == n):
                return None
        return {"fused_sgd": "sgd", "fused_adam": "adam",
                "fused_rmsprop": "rmsprop"}[op]
    return None


# ---------------------------------------------------------------------------
# Probe run
# ---------------------------------------------------------------------------
def _probe(compiled, feed_values):
    """Interpret the plan once, recording per-step operand/output
    metadata (the shape specialization the C source is emitted against).
    Returns ``(records, fetch_values)`` — a real run, so its results are
    returned to the caller."""
    slab = compiled._template.copy()
    for ph, slot in compiled._feed_slots:
        try:
            slab[slot] = feed_values[ph.id]
        except KeyError:
            raise RLGraphError(
                f"Placeholder {ph.name} was not fed (shape {ph.shape})")
    records = []
    for step in compiled.steps:
        args = [slab[i] for i in step.arg_slots]
        in_metas = [_meta(v) for v in args]
        member_dts = None
        if step.instructions is not None:
            # Run members individually (value-identical to the fused
            # kernel) so each member's result dtype is observable.
            locs: List[Any] = []
            member_dts = []
            for _op, fwd, attrs, refs in step.instructions:
                margs = [args[r] if kind == "arg" else locs[r]
                         for kind, r in refs]
                val = fwd(margs, attrs)
                locs.append(val)
                member_dts.append(np.asarray(val).dtype)
            result = locs[-1]
        else:
            result = step.forward(args, step.attrs)
        slab[step.out_slot] = result
        records.append((in_metas, _meta(result), member_dts))
    return records, [slab[s] for s in compiled._fetch_slots]


# ---------------------------------------------------------------------------
# Segment lowering
# ---------------------------------------------------------------------------
class _Segment:
    """One compiled C function plus its pointer-table recipe."""

    __slots__ = ("name", "fn", "ptrs", "cast", "statics", "var_entries",
                 "dyn", "guards", "stores", "fallback")


class _Build:
    """One feed-signature specialization: the item list interleaving
    Python steps and native segments, plus the loaded library."""

    __slots__ = ("items", "lib", "source", "epoch", "native_ids",
                 "n_segments", "n_native", "n_py")

    def refresh(self) -> bool:
        """Re-resolve variable-storage pointers (after a storage-epoch
        bump, e.g. a ParamSlab repoint). False if any variable no longer
        matches its baked shape/dtype — the build is then unusable."""
        for item in self.items:
            if item[0] != "seg":
                continue
            seg = item[1]
            for i, var, shape, dtype in seg.var_entries:
                v = var.value
                if not (isinstance(v, np.ndarray) and v.shape == shape
                        and v.dtype == dtype and v.flags.c_contiguous):
                    return False
                seg.ptrs[i] = v.ctypes.data
        self.epoch = variables.storage_epoch()
        return True


def _lower_step(compiled, step, tag, rec, proto, written, feed_set,
                native_ids) -> None:
    """Emit one step into its segment proto (entries/guards/stores/C)."""
    in_metas, out_meta, member_dts = rec
    w = proto["w"]
    entries, eidx, inseg = proto["entries"], proto["eidx"], proto["inseg"]

    def add_entry(key, entry) -> int:
        i = eidx.get(key)
        if i is None:
            i = len(entries)
            entries.append(entry)
            eidx[key] = i
        return i

    def arg_index(k) -> int:
        slot = step.arg_slots[k]
        meta = in_metas[k]
        if slot in inseg:
            return inseg[slot]
        if slot in written or slot in feed_set:
            return add_entry(("d", slot),
                             ("d", slot, tuple(meta[0]), np.dtype(meta[1])))
        # Template constant: contiguous snapshot, resolved once.
        arr = np.ascontiguousarray(compiled._template[slot])
        return add_entry(("c", slot), ("s", arr))

    def add_guard(k) -> None:
        slot = step.arg_slots[k]
        if slot in inseg or ("d", slot) in eidx:
            return
        if slot not in written and slot not in feed_set:
            return  # template constant: shape can't change
        if slot not in proto["gset"]:
            proto["gset"].add(slot)
            proto["guards"].append((slot, tuple(in_metas[k][0])))

    def store_const(value) -> None:
        si = add_entry(("k", step.out_slot, len(proto["stores"])),
                       ("s", value))
        inseg[step.out_slot] = si
        proto["stores"].append((step.out_slot, value, False))
        native_ids.add(id(value))

    a = step.attrs
    if tag == "ptr":
        var = a["var"]
        vi = add_entry(("v", id(var)),
                       ("v", var, tuple(out_meta[0]), np.dtype(out_meta[1])))
        inseg[step.out_slot] = vi
        proto["stores"].append((step.out_slot, var, True))
        return
    if tag == "const":
        shape = tuple(int(d) for d in in_metas[0][0])
        add_guard(0)
        store_const(np.asarray(shape if step.op == "shape_of"
                               else _numel(shape), dtype=np.int64))
        return
    if tag in ("sgd", "adam", "rmsprop"):
        def vidx(var) -> int:
            arr = var.value
            return add_entry(("v", id(var)), ("v", var, arr.shape, arr.dtype))
        g_i = arg_index(0)
        p_i = vidx(a["var"])
        nsz = int(a["var"].value.size)
        if tag == "sgd":
            mom = a.get("momentum", 0.0)
            m_i = vidx(a["momentum_var"]) if mom else None
            _emit_fused_sgd(w, step.name, nsz, a["lr"], mom, g_i, p_i, m_i)
        elif tag == "adam":
            _emit_fused_adam(w, step.name, nsz, a["lr"], a["beta1"],
                             a["beta2"], a["epsilon"], g_i, arg_index(1),
                             _ct(in_metas[1][1]), p_i, vidx(a["m"]),
                             vidx(a["v"]))
        else:
            _emit_fused_rmsprop(w, step.name, nsz, a["lr"], a["decay"],
                                a["epsilon"], g_i, p_i, vidx(a["ms"]))
        store_const(np.asarray(nsz, dtype=np.int64))
        return

    out_shape = tuple(int(d) for d in out_meta[0])
    out_dt = np.dtype(out_meta[1])
    buf = np.empty(out_shape, dtype=out_dt)
    oi = add_entry(("b", id(buf)), ("s", buf))
    if tag in ("fused", "ew"):
        if tag == "fused":
            instrs, dts = step.instructions, member_dts
        else:
            instrs, dts = _synthetic_members(step, out_dt)
        data, shape_only = _ew_args(instrs, dts, in_metas, out_meta)
        arg_idx: List[Optional[int]] = [None] * len(step.arg_slots)
        for k in data:
            arg_idx[k] = arg_index(k)
        for k in shape_only:
            add_guard(k)
        members = [{"op": mop, "attrs": mattrs, "refs": refs,
                    "dtype": dts[m_i]}
                   for m_i, (mop, _f, mattrs, refs) in enumerate(instrs)]
        _emit_elementwise(w, step.name, members, in_metas, arg_idx, oi,
                          out_meta)
    elif tag == "copy":
        _emit_copy(w, step.name, _numel(out_shape) * out_dt.itemsize,
                   arg_index(0), oi)
        for k in range(1, len(step.arg_slots)):
            add_guard(k)
    elif tag == "transpose":
        perm = [int(p) % len(in_metas[0][0]) for p in a["perm"]]
        _emit_transpose(w, step.name, in_metas[0], out_meta, perm,
                        arg_index(0), oi)
    elif tag == "matmul":
        _emit_matmul(w, step.name, in_metas[0], in_metas[1], out_meta,
                     arg_index(0), arg_index(1), oi)
    elif tag == "reduce":
        axes = set(_reduce_axes(in_metas[0][0], a.get("axis")))
        _emit_reduce(w, step.name, in_metas[0], out_meta, axes,
                     _REDUCE_MODES[step.op], arg_index(0), oi)
    elif tag == "argmax":
        ax = a.get("axis")
        if ax is not None:
            ax = int(ax) % len(in_metas[0][0])
        _emit_argmax(w, step.name, in_metas[0], ax, arg_index(0), oi)
    elif tag == "unbroadcast":
        gin = tuple(int(d) for d in in_metas[0][0])
        pad = len(gin) - len(out_shape)
        axes = set(range(pad))
        for i2, od in enumerate(out_shape):
            if od == 1 and gin[pad + i2] != 1:
                axes.add(pad + i2)
        _emit_reduce(w, step.name, in_metas[0], out_meta, axes, "sum",
                     arg_index(0), oi)
        add_guard(1)
    elif tag == "bcast":
        exp = _bcast_expanded(in_metas[0][0], out_shape, a)
        members = [{"op": "identity", "attrs": {}, "refs": [("arg", 0)],
                    "dtype": out_dt}]
        _emit_elementwise(w, step.name, members,
                          [(exp, in_metas[0][1], True)], [arg_index(0)],
                          oi, out_meta)
        add_guard(1)
    elif tag == "one_hot":
        _emit_one_hot(w, step.name, in_metas[0], out_meta, int(a["depth"]),
                      arg_index(0), oi)
    elif tag == "gather":
        _emit_gather(w, step.name, in_metas[0], in_metas[1], arg_index(0),
                     arg_index(1), oi)
    elif tag == "concat":
        ax = int(a.get("axis", 0)) % len(out_shape)
        _emit_concat(w, step.name, in_metas, out_meta, ax,
                     [arg_index(k) for k in range(len(in_metas))], oi)
    elif tag == "flatcat":
        _emit_flatcat(w, step.name, in_metas,
                      [arg_index(k) for k in range(len(in_metas))], oi)
    else:
        raise RLGraphError(f"Unhandled native tag {tag!r}")
    inseg[step.out_slot] = oi
    proto["stores"].append((step.out_slot, buf, False))
    native_ids.add(id(buf))


def _assemble_source(protos) -> str:
    parts = ["#include <math.h>", "#include <string.h>",
             "#include <limits.h>", ""]
    for p in protos:
        parts.append(f"void {p['name']}(char **B) {{")
        parts.extend(p["w"].lines)
        parts.append("}")
        parts.append("")
    return "\n".join(parts)


def _lower(compiled, records):
    """Classify steps, pick viable segments, and emit their C bodies.

    Returns ``(protos, items, source, native_ids, n_native)`` or None
    when no segment clears the viability bar.
    """
    steps = compiled.steps
    kinds: List[Optional[str]] = []
    for j, step in enumerate(steps):
        try:
            kinds.append(_native_kind(step, records[j]))
        except Exception:
            kinds.append(None)
    runs = []
    j, n = 0, len(steps)
    while j < n:
        if kinds[j] is None:
            j += 1
            continue
        k = j
        while k < n and kinds[k] is not None:
            k += 1
        c_tags = [t for t in kinds[j:k] if t not in ("ptr", "const")]
        if len(c_tags) >= 2 or (len(c_tags) == 1
                                and c_tags[0] in _SINGLETON_OK):
            runs.append((j, k))
        j = k
    if not runs:
        return None
    run_map = {}
    for lo, hi in runs:
        for j in range(lo, hi):
            run_map[j] = (lo, hi)
    feed_set = {slot for _ph, slot in compiled._feed_slots}
    written: set = set()
    native_ids: set = set()
    protos: List[Dict[str, Any]] = []
    items: List[Tuple] = []
    for j, step in enumerate(steps):
        span = run_map.get(j)
        if span is None:
            items.append(("py", compiled._steps[j], step.op == "py_func"))
        else:
            lo, hi = span
            if j == lo:
                protos.append({"name": f"seg{len(protos)}", "w": _W(),
                               "entries": [], "eidx": {}, "inseg": {},
                               "guards": [], "gset": set(), "stores": [],
                               "fallback": compiled._steps[lo:hi]})
                items.append(("segref", len(protos) - 1))
            _lower_step(compiled, step, kinds[j], records[j], protos[-1],
                        written, feed_set, native_ids)
        written.add(step.out_slot)
    n_native = sum(hi - lo for lo, hi in runs)
    return protos, items, _assemble_source(protos), native_ids, n_native


def _finalize(protos, lib) -> List[_Segment]:
    """Bind protos to the loaded library: pointer tables + fn handles."""
    segs = []
    for p in protos:
        seg = _Segment()
        seg.name = p["name"]
        seg.fn = lib.fns[p["name"]]
        seg.ptrs = np.zeros(max(len(p["entries"]), 1), dtype=np.uint64)
        seg.statics = []
        seg.var_entries = []
        seg.dyn = []
        for i, e in enumerate(p["entries"]):
            if e[0] == "s":
                seg.ptrs[i] = e[1].ctypes.data
                seg.statics.append(e[1])
            elif e[0] == "v":
                seg.var_entries.append((i, e[1], e[2], e[3]))
            else:
                seg.dyn.append((i, e[1], e[2], e[3]))
        seg.guards = p["guards"]
        seg.stores = p["stores"]
        seg.fallback = p["fallback"]
        seg.cast = lib.cast_ptr(int(seg.ptrs.ctypes.data))
        segs.append(seg)
    return segs


def _run_segment(seg: _Segment, slab) -> bool:
    """Resolve dynamic pointers, check guards, call the C function, and
    apply stores. False = a guard failed (caller runs the recorded
    Python steps for this segment instead)."""
    ptrs = seg.ptrs
    keep = None
    for i, slot, shape, dtype in seg.dyn:
        v = slab[slot]
        if not isinstance(v, (np.ndarray, np.generic)) \
                or v.shape != shape or v.dtype != dtype:
            return False
        if v.__class__ is not np.ndarray or not v.flags.c_contiguous:
            v = np.ascontiguousarray(v)
            if keep is None:
                keep = []
            keep.append(v)  # alive until after the C call
        ptrs[i] = v.ctypes.data
    for slot, shape in seg.guards:
        v = slab[slot]
        if not isinstance(v, (np.ndarray, np.generic)) or v.shape != shape:
            return False
    seg.fn(seg.cast)
    for out_slot, obj, is_var in seg.stores:
        slab[out_slot] = obj.value if is_var else obj
    return True


def _derives_from(value, native_ids) -> bool:
    """Whether ``value`` is (a view of) a build-owned native buffer —
    such arrays are overwritten in place by the next run."""
    depth = 0
    while value is not None and depth < 16:
        if id(value) in native_ids:
            return True
        value = getattr(value, "base", None)
        depth += 1
    return False


# ---------------------------------------------------------------------------
# NativePlan
# ---------------------------------------------------------------------------
class NativePlan:
    """Drop-in for :class:`~repro.backend.compiler.CompiledPlan` that
    executes native segments where possible (the Session wraps the
    compiled plan with this at ``optimize="native"``)."""

    def __init__(self, compiled, session_stats=None):
        self._compiled = compiled
        self._session_stats = session_stats
        self._builds: Dict[Tuple, Any] = {}
        self._counted = False
        self._broken = False
        self.steps = compiled.steps
        self.stats = compiled.stats
        self.c_source: Optional[str] = None

    @property
    def codegen_source(self):
        return self._compiled.codegen_source

    def _signature(self, feed_values) -> Tuple:
        sig = []
        for ph, _slot in self._compiled._feed_slots:
            try:
                v = feed_values[ph.id]
            except KeyError:
                raise RLGraphError(
                    f"Placeholder {ph.name} was not fed (shape {ph.shape})")
            sig.append((ph.id, np.shape(v), str(np.asarray(v).dtype)))
        return tuple(sig)

    def run(self, feed_values: Dict[int, Any]) -> List[Any]:
        compiled = self._compiled
        if self._broken:
            return compiled.run(feed_values)
        sig = self._signature(feed_values)
        build = self._builds.get(sig)
        if build is None:
            if len(self._builds) >= _MAX_BUILDS:
                return compiled.run(feed_values)
            return self._build_and_run(sig, feed_values)
        if build == "py":
            return compiled.run(feed_values)
        return self._run_build(build, feed_values)

    # -- lowering ----------------------------------------------------------
    def _build_and_run(self, sig, feed_values):
        compiled = self._compiled
        stats = self._session_stats
        t0 = time.perf_counter()
        records, fetches = _probe(compiled, feed_values)
        try:
            lowered = _lower(compiled, records)
        except Exception:
            lowered = None
        if lowered is None:
            self._builds[sig] = "py"  # nothing viable for this signature
            if stats is not None:
                stats.native_compile_time += time.perf_counter() - t0
            return self._copy_fetches(fetches, frozenset())
        protos, items, source, native_ids, n_native = lowered
        self.c_source = source
        lib, hit = _build_library(source, [p["name"] for p in protos])
        if lib is None:
            self._broken = True
            _warn_compile_failed()
            if stats is not None:
                stats.native_compile_time += time.perf_counter() - t0
            return self._copy_fetches(fetches, frozenset())
        segs = _finalize(protos, lib)
        build = _Build()
        build.items = [("seg", segs[it[1]]) if it[0] == "segref" else it
                       for it in items]
        build.lib = lib
        build.source = source
        build.native_ids = native_ids
        build.n_segments = len(segs)
        build.n_native = n_native
        build.n_py = len(compiled.steps) - n_native
        build.epoch = None
        if not build.refresh():
            self._broken = True
            if stats is not None:
                stats.native_compile_time += time.perf_counter() - t0
            return self._copy_fetches(fetches, frozenset())
        self._builds[sig] = build
        if stats is not None:
            stats.native_compile_time += time.perf_counter() - t0
            if hit:
                stats.native_cache_hits += 1
        if not self._counted:
            self._counted = True
            cs = compiled.stats
            cs.native_segments = build.n_segments
            cs.native_steps = build.n_native
            cs.native_py_steps = build.n_py
            if stats is not None:
                stats.plans_native += 1
                stats.native_segments += build.n_segments
                stats.native_steps += build.n_native
                stats.native_py_steps += build.n_py
        return self._copy_fetches(fetches, frozenset())

    # -- execution ---------------------------------------------------------
    def _run_build(self, build: _Build, feed_values):
        compiled = self._compiled
        if build.epoch != variables.storage_epoch():
            if not build.refresh():
                self._broken = True  # variables changed shape under us
                return compiled.run(feed_values)
        slab = compiled._template.copy()
        for ph, slot in compiled._feed_slots:
            try:
                slab[slot] = feed_values[ph.id]
            except KeyError:
                raise RLGraphError(
                    f"Placeholder {ph.name} was not fed (shape {ph.shape})")
        native_ids = build.native_ids
        for item in build.items:
            if item[0] == "seg":
                seg = item[1]
                if not _run_segment(seg, slab):
                    for fwd, attrs, arg_slots, out_slot in seg.fallback:
                        slab[out_slot] = fwd([slab[i] for i in arg_slots],
                                             attrs)
            else:
                fwd, attrs, arg_slots, out_slot = item[1]
                args = [slab[i] for i in arg_slots]
                if item[2]:
                    # py_func may retain its arguments; never hand it a
                    # buffer the next native run will overwrite in place.
                    args = [v.copy() if v.__class__ is np.ndarray
                            and _derives_from(v, native_ids) else v
                            for v in args]
                slab[out_slot] = fwd(args, attrs)
        return self._copy_fetches([slab[s] for s in compiled._fetch_slots],
                                  native_ids)

    def _copy_fetches(self, fetches, native_ids):
        out = []
        for v in fetches:
            if v.__class__ is np.ndarray and (
                    _derives_from(v, native_ids)
                    or variables.aliases_state(v)):
                v = v.copy()
            out.append(v)
        return out
