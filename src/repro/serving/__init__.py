"""Policy serving: dynamic micro-batching inference for trained agents.

The missing half of the ROADMAP's "serve heavy traffic" goal: training
produces weights, this package serves them to many concurrent clients.

* :class:`PolicyServer` — collects concurrent single-observation
  requests into micro-batches (batch window + max-batch-size knobs) and
  executes ONE compiled act call per batch.
* :class:`InferenceWorkerPool` — the same front end sharded over
  raylite thread/process actor replicas with least-loaded routing, plus
  an optional queue-depth autoscaler (``autoscale_spec``).
* :class:`PolicyClient` — synchronous ``act(obs)`` over either, in
  process or across the raylite boundary, with optional deadline-gated
  retries and hedged sends (``retry_spec``).
* :class:`HttpGateway` — stdlib asyncio HTTP/JSON edge in front of
  either front end: deadline propagation via ``X-Deadline-Ms``, typed
  503/504 overload mapping, per-route ``/metrics``.
* Overload policy (:mod:`repro.serving.overload`): bounded-queue
  admission (``reject`` / ``drop-oldest``), CoDel-style shedding,
  request deadlines, and the queue-depth autoscaler — all opt-in via
  ``admission_spec`` / ``default_deadline`` / ``autoscale_spec``.
* Flat weight hot-swap (:meth:`PolicyServer.set_weights`) updates a
  running server mid-traffic without dropping requests; executors push
  into it via their ``weight_listeners`` hook (eval-during-training).

See ``docs/serving.md`` for the architecture, the latency/throughput
tradeoff of the batching knobs, and the gateway's overload behavior.
"""

from repro.serving.policy_server import (
    PolicyServer,
    ServerStats,
    bucket_size,
)
from repro.serving.worker_pool import InferenceWorkerPool, PolicyServerActor
from repro.serving.client import (
    PolicyClient,
    RetrySpec,
    drive_concurrent_load,
    resolve_retry_spec,
)
from repro.serving.gateway import (
    HttpGateway,
    HttpPolicyClient,
    drive_http_load,
)
from repro.serving.overload import (
    AdmissionSpec,
    AutoscaleSpec,
    CoDelShedder,
    DeadlineExceededError,
    OverloadError,
    QueueDepthAutoscaler,
    ServerClosedError,
)

__all__ = [
    "PolicyServer",
    "InferenceWorkerPool",
    "PolicyServerActor",
    "PolicyClient",
    "RetrySpec",
    "ServerStats",
    "bucket_size",
    "drive_concurrent_load",
    "resolve_retry_spec",
    "HttpGateway",
    "HttpPolicyClient",
    "drive_http_load",
    "AdmissionSpec",
    "AutoscaleSpec",
    "CoDelShedder",
    "DeadlineExceededError",
    "OverloadError",
    "QueueDepthAutoscaler",
    "ServerClosedError",
]
