"""Policy serving: dynamic micro-batching inference for trained agents.

The missing half of the ROADMAP's "serve heavy traffic" goal: training
produces weights, this package serves them to many concurrent clients.

* :class:`PolicyServer` — collects concurrent single-observation
  requests into micro-batches (batch window + max-batch-size knobs) and
  executes ONE compiled act call per batch.
* :class:`InferenceWorkerPool` — the same front end sharded over
  raylite thread/process actor replicas with least-loaded routing.
* :class:`PolicyClient` — synchronous ``act(obs)`` over either, in
  process or across the raylite boundary.
* Flat weight hot-swap (:meth:`PolicyServer.set_weights`) updates a
  running server mid-traffic without dropping requests; executors push
  into it via their ``weight_listeners`` hook (eval-during-training).

See ``docs/serving.md`` for the architecture and the latency/throughput
tradeoff of the batching knobs.
"""

from repro.serving.policy_server import (
    PolicyServer,
    ServerStats,
    bucket_size,
)
from repro.serving.worker_pool import InferenceWorkerPool, PolicyServerActor
from repro.serving.client import PolicyClient, drive_concurrent_load

__all__ = [
    "PolicyServer",
    "InferenceWorkerPool",
    "PolicyServerActor",
    "PolicyClient",
    "ServerStats",
    "bucket_size",
    "drive_concurrent_load",
]
