"""PolicyClient: a synchronous act interface over any serving target.

Clients see one call — ``act(obs) -> action`` — regardless of what sits
behind it:

* an **in-process** :class:`PolicyServer` or :class:`InferenceWorkerPool`
  (the client submits into the micro-batching mailbox and blocks on the
  raylite-style future), or
* a raylite :class:`PolicyServerActor` handle **across the actor
  boundary** (thread or process replica) — the client wraps the
  observation as a batch of one and issues ``act_batch.remote``, so an
  executor's eval worker can query a central server without importing
  any of its internals.

The client records per-request round-trip latency, which is where
p50/p99 service latency is honestly measured (server-side numbers can't
see queueing before ``submit`` or wake-up after resolve).
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro import raylite
from repro.utils.errors import RLGraphError


class PolicyClient:
    """Synchronous policy queries with client-side latency accounting."""

    #: Latency samples kept for percentiles; the request *count* is
    #: exact regardless (long-lived eval clients must not leak memory).
    MAX_LATENCY_SAMPLES = 50_000

    def __init__(self, target, timeout: Optional[float] = 30.0):
        self.timeout = timeout
        self._latencies: List[float] = []
        self._num_requests = 0
        submit = getattr(target, "submit", None)
        if submit is not None and not hasattr(submit, "remote"):
            # In-process server/pool: its submit() is a plain method.
            self._submit = submit
            self._remote = False
        elif hasattr(target, "act_batch"):
            # A raylite actor handle (attribute access yields .remote
            # callables): single-request batches over the boundary.
            self._handle = target
            self._submit = self._submit_remote
            self._remote = True
        else:
            raise RLGraphError(
                f"PolicyClient target {target!r} is neither a serving "
                f"front end (submit/act) nor a raylite policy actor "
                f"(act_batch)")
        self.target = target

    def _submit_remote(self, obs) -> raylite.ObjectRef:
        return self._handle.act_batch.remote(np.asarray(obs)[None])

    def submit(self, obs) -> raylite.ObjectRef:
        """Fire-and-forget: returns the action future."""
        return self._submit(obs)

    def _record(self, latency: float) -> None:
        self._num_requests += 1
        if len(self._latencies) < self.MAX_LATENCY_SAMPLES:
            self._latencies.append(latency)

    def act(self, obs, timeout: Optional[float] = None):
        """Blocking single-observation act; records round-trip latency."""
        t0 = time.perf_counter()
        result = self._submit(obs).result(timeout or self.timeout)
        self._record(time.perf_counter() - t0)
        if self._remote:
            result = np.asarray(result)[0]
        return result

    def act_many(self, observations, timeout: Optional[float] = None):
        """Pipelined: submit every observation, then gather in order —
        this is what lets the server micro-batch one client's burst."""
        t0 = time.perf_counter()
        refs = [self._submit(obs) for obs in observations]
        results = [ref.result(timeout or self.timeout) for ref in refs]
        self._record((time.perf_counter() - t0) / max(len(results), 1))
        if self._remote:
            results = [np.asarray(r)[0] for r in results]
        return results

    # -- latency accounting --------------------------------------------------
    @property
    def num_requests(self) -> int:
        return self._num_requests

    @property
    def latencies(self) -> np.ndarray:
        """Recorded per-request round-trip latencies (seconds)."""
        return np.asarray(self._latencies)

    def latency(self, percentile: float) -> Optional[float]:
        if not self._latencies:
            return None
        return float(np.percentile(self._latencies, percentile))

    def latency_stats(self) -> dict:
        if not self._latencies:
            return {"requests": 0}
        arr = np.asarray(self._latencies)
        return {
            "requests": len(arr),
            "mean_ms": round(float(arr.mean()) * 1e3, 3),
            "p50_ms": round(float(np.percentile(arr, 50)) * 1e3, 3),
            "p99_ms": round(float(np.percentile(arr, 99)) * 1e3, 3),
        }


def drive_concurrent_load(server, num_clients: int, duration: float,
                          observations=None):
    """Closed-loop synchronous load driver (the serving benchmark shape).

    Spawns ``num_clients`` threads, each a :class:`PolicyClient` looping
    ``act`` on its own fixed observation for ``duration`` seconds, and
    aggregates client-side latency.  This is the one driver behind the
    E13 bench, the tier-1 throughput acceptance, the CLI, and the CI
    perf snapshot — measurement methodology changes land once, here.

    ``observations`` is one observation per client; ``None`` samples
    them from the server's ``state_space``.  Returns a dict with
    ``requests``, ``req_per_s``, ``p50_ms``, ``p99_ms`` and the raw
    ``latencies`` array (seconds).  A failing server fails the
    measurement loudly: any client whose ``act`` raised re-raises here
    — a perf snapshot must never average over a dying run.
    """
    import threading

    if observations is None:
        observations = server.state_space.sample(size=max(num_clients, 1))
    stop = threading.Event()
    clients = [PolicyClient(server) for _ in range(num_clients)]
    client_errors: List[BaseException] = []

    def loop(index: int) -> None:
        obs = np.asarray(observations[index])
        try:
            while not stop.is_set():
                clients[index].act(obs)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            client_errors.append(exc)

    threads = [threading.Thread(target=loop, args=(i,), daemon=True)
               for i in range(num_clients)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(duration)
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)
    wall = time.perf_counter() - t0
    if client_errors:
        raise RLGraphError(
            f"drive_concurrent_load: {len(client_errors)}/{num_clients} "
            f"clients failed mid-measurement; first error: "
            f"{client_errors[0]!r}") from client_errors[0]
    samples = [c.latencies for c in clients if c.num_requests]
    if not samples:
        raise RLGraphError(
            "drive_concurrent_load: no request completed within the "
            "measurement window — the server is wedged or erroring")
    latencies = np.concatenate(samples)
    return {
        "requests": int(len(latencies)),
        "wall_time": wall,
        "req_per_s": len(latencies) / wall,
        "p50_ms": float(np.percentile(latencies, 50)) * 1e3,
        "p99_ms": float(np.percentile(latencies, 99)) * 1e3,
        "latencies": latencies,
    }
