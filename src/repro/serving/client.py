"""PolicyClient: a synchronous act interface over any serving target.

Clients see one call — ``act(obs) -> action`` — regardless of what sits
behind it:

* an **in-process** :class:`PolicyServer` or :class:`InferenceWorkerPool`
  (the client submits into the micro-batching mailbox and blocks on the
  raylite-style future), or
* a raylite :class:`PolicyServerActor` handle **across the actor
  boundary** (thread or process replica) — the client wraps the
  observation as a batch of one and issues ``act_batch.remote``, so an
  executor's eval worker can query a central server without importing
  any of its internals.

The client records per-request round-trip latency, which is where
p50/p99 service latency is honestly measured (server-side numbers can't
see queueing before ``submit`` or wake-up after resolve).

Tail-latency armor (all optional, all deadline-gated):

* every call runs under one **deadline budget** (``timeout``) that also
  propagates into the serving front end, so the batch loop can skip the
  request once it expires instead of wasting a batch slot;
* ``retry_spec`` adds bounded client-side **retries** on
  :class:`OverloadError` with the supervision module's jitterless
  exponential backoff (reused, not duplicated) — a retry that could not
  finish inside the deadline is never attempted;
* ``hedge_after`` (on the retry spec) adds **hedged sends**: if the
  primary request has not resolved after that long, a duplicate is
  issued and the first completion wins — the classic p99 cut for a
  pure, idempotent request like policy inference.
"""

from __future__ import annotations

import inspect
import time
from typing import List, Optional

import numpy as np

from repro import raylite
from repro.execution.supervision import BackoffPolicy
from repro.serving.overload import (
    DeadlineExceededError,
    OverloadError,
)
from repro.utils.errors import RLGraphError


class RetrySpec:
    """Resolved client retry/hedging configuration.

    ``max_retries`` bounds re-submissions after a retryable error
    (default: overload rejections/sheds — the cases where backing off
    and retrying is the protocol).  ``backoff`` is the supervision
    module's :class:`BackoffPolicy` (jitterless, deterministic);
    an :class:`OverloadError`'s ``retry_after`` hint takes precedence
    when larger.  ``hedge_after`` (seconds, None = off) issues a
    duplicate request when the primary is still pending after that
    long; first completion wins.  Retries and hedges never extend the
    call's deadline.
    """

    def __init__(self, max_retries: int = 2,
                 backoff: Optional[BackoffPolicy] = None,
                 hedge_after: Optional[float] = None,
                 retry_on: tuple = (OverloadError,)):
        if max_retries < 0:
            raise RLGraphError("max_retries must be >= 0")
        if hedge_after is not None and hedge_after <= 0:
            raise RLGraphError("hedge_after must be > 0 (or None)")
        self.max_retries = int(max_retries)
        self.backoff = backoff or BackoffPolicy(
            base_delay=0.01, factor=2.0, max_delay=0.5,
            max_restarts=max(max_retries, 1))
        self.hedge_after = hedge_after
        self.retry_on = tuple(retry_on)

    def __repr__(self):
        return (f"RetrySpec(max_retries={self.max_retries}, "
                f"backoff={self.backoff!r}, "
                f"hedge_after={self.hedge_after})")


_RETRY_KEYS = {"max_retries", "hedge_after", "base_delay", "factor",
               "max_delay"}


def resolve_retry_spec(spec) -> Optional[RetrySpec]:
    """``None``/``False`` — no retries (seed behavior).  An int —
    ``max_retries``.  A dict may set ``max_retries``, ``hedge_after``
    and the backoff knobs.  A :class:`RetrySpec` passes through."""
    if spec is None or spec is False:
        return None
    if isinstance(spec, RetrySpec):
        return spec
    if isinstance(spec, bool):
        return RetrySpec()
    if isinstance(spec, int):
        return RetrySpec(max_retries=spec)
    if isinstance(spec, dict):
        unknown = set(spec) - _RETRY_KEYS
        if unknown:
            raise RLGraphError(
                f"Unknown retry_spec keys {sorted(unknown)}; "
                f"expected a subset of {sorted(_RETRY_KEYS)}")
        max_retries = spec.get("max_retries", 2)
        backoff = BackoffPolicy(
            base_delay=spec.get("base_delay", 0.01),
            factor=spec.get("factor", 2.0),
            max_delay=spec.get("max_delay", 0.5),
            max_restarts=max(max_retries, 1))
        return RetrySpec(max_retries=max_retries, backoff=backoff,
                         hedge_after=spec.get("hedge_after"))
    raise RLGraphError(
        f"retry_spec must be None, bool, int, dict or RetrySpec, "
        f"got {type(spec).__name__}")


class PolicyClient:
    """Synchronous policy queries with client-side latency accounting."""

    #: Latency samples kept for percentiles; the request *count* is
    #: exact regardless (long-lived eval clients must not leak memory).
    MAX_LATENCY_SAMPLES = 50_000

    def __init__(self, target, timeout: Optional[float] = 30.0,
                 retry_spec=None):
        self.timeout = timeout
        self.retry = resolve_retry_spec(retry_spec)
        self._latencies: List[float] = []
        self._num_requests = 0
        self.retries = 0
        self.hedges = 0
        submit = getattr(target, "submit", None)
        if submit is not None and not hasattr(submit, "remote"):
            # In-process server/pool: its submit() is a plain method.
            # Deadline-aware front ends get the per-request budget so
            # the batch loop can skip it once expired; plain submit
            # callables (tests, adapters) still work.
            try:
                params = inspect.signature(submit).parameters
                supports_deadline = "deadline" in params
            except (TypeError, ValueError):
                supports_deadline = False
            if supports_deadline:
                self._submit = submit
            else:
                self._submit = lambda obs, deadline=None: submit(obs)
            self._remote = False
        elif hasattr(target, "act_batch"):
            # A raylite actor handle (attribute access yields .remote
            # callables): single-request batches over the boundary.
            self._handle = target
            self._submit = self._submit_remote
            self._remote = True
        else:
            raise RLGraphError(
                f"PolicyClient target {target!r} is neither a serving "
                f"front end (submit/act) nor a raylite policy actor "
                f"(act_batch)")
        self.target = target

    def _submit_remote(self, obs, deadline=None) -> raylite.ObjectRef:
        return self._handle.act_batch.remote(np.asarray(obs)[None])

    def submit(self, obs, deadline: Optional[float] = None
               ) -> raylite.ObjectRef:
        """Fire-and-forget: returns the action future."""
        return self._submit(obs, deadline=deadline)

    def _record(self, latency: float) -> None:
        self._num_requests += 1
        if len(self._latencies) < self.MAX_LATENCY_SAMPLES:
            self._latencies.append(latency)

    # -- the deadline-gated request path -------------------------------------
    def _await_first(self, refs, timeout: Optional[float]):
        """Wait for the first *settled* ref and return its outcome —
        preferring a success when a ref failed but another is pending
        (the hedging semantics: first good answer wins)."""
        errors: List[BaseException] = []
        deadline = None if timeout is None else time.perf_counter() + timeout
        while refs:
            rem = None if deadline is None \
                else max(deadline - time.perf_counter(), 0.0)
            ready, pending = raylite.wait(refs, num_returns=1, timeout=rem)
            if not ready:
                break
            for ref in ready:
                try:
                    return ref.result(0)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
            refs = pending
        if errors:
            raise errors[0]
        raise raylite.RayliteError(
            f"act timed out after {timeout}s")

    def _attempt(self, obs, remaining: Optional[float]):
        """One submission (plus an optional hedge) within ``remaining``."""
        hedge_after = self.retry.hedge_after if self.retry else None
        ref = self._submit(obs, deadline=remaining)
        if hedge_after is None:
            return self._await_first([ref], remaining)
        first_wait = hedge_after if remaining is None \
            else min(hedge_after, remaining)
        t0 = time.perf_counter()
        ready, _ = raylite.wait([ref], num_returns=1, timeout=first_wait)
        if ready:
            return ref.result(0)
        rem = None if remaining is None \
            else remaining - (time.perf_counter() - t0)
        if rem is not None and rem <= 0:
            raise raylite.RayliteError(
                f"act timed out after {remaining}s")
        # The primary is slow: hedge.  A rejected hedge (overloaded
        # server) is not an error — the primary is still in flight.
        refs = [ref]
        try:
            refs.append(self._submit(obs, deadline=rem))
            self.hedges += 1
        except OverloadError:
            pass
        return self._await_first(refs, rem)

    def act(self, obs, timeout: Optional[float] = None):
        """Blocking single-observation act; records round-trip latency.

        ``timeout`` (default: the client's ``timeout``) is a total
        deadline budget covering queueing, batching, every retry and
        any hedge — the call never blocks past it.
        """
        budget = timeout if timeout is not None else self.timeout
        deadline = None if budget is None \
            else time.perf_counter() + budget
        t0 = time.perf_counter()
        attempt = 0
        while True:
            remaining = None if deadline is None \
                else deadline - time.perf_counter()
            if remaining is not None and remaining <= 0:
                raise DeadlineExceededError(
                    f"act: deadline budget {budget}s exhausted after "
                    f"{attempt} attempt(s)", budget=budget)
            try:
                result = self._attempt(obs, remaining)
                break
            except BaseException as exc:  # noqa: BLE001
                retryable = (self.retry is not None
                             and isinstance(exc, self.retry.retry_on)
                             and attempt < self.retry.max_retries)
                if not retryable:
                    raise
                delay = self.retry.backoff.delay(attempt)
                if isinstance(exc, OverloadError) and exc.retry_after:
                    delay = max(delay, exc.retry_after)
                remaining = None if deadline is None \
                    else deadline - time.perf_counter()
                if remaining is not None and delay >= remaining:
                    # A retry that cannot finish inside the deadline is
                    # never attempted: surface the real failure now.
                    raise
                attempt += 1
                self.retries += 1
                time.sleep(delay)
        self._record(time.perf_counter() - t0)
        if self._remote:
            result = np.asarray(result)[0]
        return result

    def act_many(self, observations, timeout: Optional[float] = None):
        """Pipelined: submit every observation, then gather in order —
        this is what lets the server micro-batch one client's burst.

        ``timeout`` is a single deadline shared across ALL pending
        futures: total wall time is bounded by it, not by
        ``N x timeout`` (each gather waits only for what is left of the
        shared budget).
        """
        budget = timeout if timeout is not None else self.timeout
        t0 = time.perf_counter()
        deadline = None if budget is None else t0 + budget
        refs = [self._submit(obs, deadline=budget) for obs in observations]
        results = []
        for ref in refs:
            rem = None if deadline is None \
                else max(deadline - time.perf_counter(), 0.0)
            results.append(ref.result(rem))
        self._record((time.perf_counter() - t0) / max(len(results), 1))
        if self._remote:
            results = [np.asarray(r)[0] for r in results]
        return results

    # -- latency accounting --------------------------------------------------
    @property
    def num_requests(self) -> int:
        return self._num_requests

    @property
    def latencies(self) -> np.ndarray:
        """Recorded per-request round-trip latencies (seconds)."""
        return np.asarray(self._latencies)

    def latency(self, percentile: float) -> Optional[float]:
        if not self._latencies:
            return None
        return float(np.percentile(self._latencies, percentile))

    def latency_stats(self) -> dict:
        if not self._latencies:
            return {"requests": 0}
        arr = np.asarray(self._latencies)
        return {
            "requests": len(arr),
            "mean_ms": round(float(arr.mean()) * 1e3, 3),
            "p50_ms": round(float(np.percentile(arr, 50)) * 1e3, 3),
            "p99_ms": round(float(np.percentile(arr, 99)) * 1e3, 3),
            "retries": self.retries,
            "hedges": self.hedges,
        }


def drive_concurrent_load(server, num_clients: int, duration: float,
                          observations=None, tolerate_overload: bool = False,
                          client_timeout: Optional[float] = None,
                          retry_spec=None, join_timeout: float = 30.0):
    """Closed-loop synchronous load driver (the serving benchmark shape).

    Spawns ``num_clients`` threads, each a :class:`PolicyClient` looping
    ``act`` on its own fixed observation for ``duration`` seconds, and
    aggregates client-side latency.  This is the one driver behind the
    E13 bench, the tier-1 throughput acceptance, the CLI, and the CI
    perf snapshot — measurement methodology changes land once, here.

    ``observations`` is one observation per client; ``None`` samples
    them from the server's ``state_space``.  Returns a dict with
    ``requests``, ``req_per_s``, ``p50_ms``, ``p99_ms``, the raw
    ``latencies`` array (seconds), plus ``stragglers`` (clients still
    alive after the join deadline — they no longer vanish silently from
    the stats) and ``overload_errors``.  A failing server fails the
    measurement loudly: any client whose ``act`` raised re-raises here
    — a perf snapshot must never average over a dying run.  With
    ``tolerate_overload=True``, typed :class:`OverloadError` responses
    are counted (and briefly backed off) instead of failing the run —
    the shape overload tests and benches need.
    """
    import threading

    if observations is None:
        observations = server.state_space.sample(size=max(num_clients, 1))
    stop = threading.Event()
    clients = [PolicyClient(server, retry_spec=retry_spec)
               if client_timeout is None else
               PolicyClient(server, timeout=client_timeout,
                            retry_spec=retry_spec)
               for _ in range(num_clients)]
    client_errors: List[BaseException] = []
    overload_counts = [0] * num_clients

    def loop(index: int) -> None:
        obs = np.asarray(observations[index])
        client = clients[index]
        try:
            while not stop.is_set():
                try:
                    client.act(obs)
                except OverloadError as exc:
                    if not tolerate_overload:
                        raise
                    overload_counts[index] += 1
                    stop.wait(exc.retry_after or 0.005)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            client_errors.append(exc)

    threads = [threading.Thread(target=loop, args=(i,), daemon=True)
               for i in range(num_clients)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(duration)
    stop.set()
    for thread in threads:
        thread.join(timeout=join_timeout)
    stragglers = sum(1 for thread in threads if thread.is_alive())
    wall = time.perf_counter() - t0
    if client_errors:
        raise RLGraphError(
            f"drive_concurrent_load: {len(client_errors)}/{num_clients} "
            f"clients failed mid-measurement; first error: "
            f"{client_errors[0]!r}") from client_errors[0]
    samples = [c.latencies for c in clients if c.num_requests]
    if not samples:
        raise RLGraphError(
            "drive_concurrent_load: no request completed within the "
            "measurement window — the server is wedged or erroring")
    latencies = np.concatenate(samples)
    return {
        "requests": int(len(latencies)),
        "wall_time": wall,
        "req_per_s": len(latencies) / wall,
        "p50_ms": float(np.percentile(latencies, 50)) * 1e3,
        "p99_ms": float(np.percentile(latencies, 99)) * 1e3,
        "latencies": latencies,
        "stragglers": stragglers,
        "overload_errors": int(sum(overload_counts)),
        "retries": int(sum(c.retries for c in clients)),
    }
