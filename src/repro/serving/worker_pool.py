"""InferenceWorkerPool: micro-batched serving sharded over raylite actors.

One :class:`~repro.serving.policy_server.PolicyServer` batches well but
executes on one thread; when inference itself is the bottleneck (big
nets, or pure-Python preprocessing holding the GIL) the pool shards the
same micro-batching front end across N :class:`PolicyServerActor`
replicas — raylite thread actors by default, or **process** actors
(``parallel_spec="process"``) for real multi-core inference where each
batch decodes from shared memory in the worker.

Dispatch is asynchronous: the collector thread routes each assembled
batch to the least-loaded replica (``handle.num_pending()``, the same
mailbox-depth signal raylite schedulers see) and immediately resumes
collecting the next batch; the per-batch ``ObjectRef`` completion
callback scatters actions back to the per-request futures.  The pool
therefore keeps all replicas busy without ever blocking on one.

Weight hot-swap broadcasts the flat vector to every replica through the
normal actor mailboxes — FIFO per actor guarantees each replica applies
it between its own batches, so a mid-traffic swap is exactly as safe as
the single-server case (and ships one shared-memory block per process
replica, PR 4's invariant).
"""

from __future__ import annotations

import functools
import threading
from typing import Callable, List, Optional

import numpy as np

from repro import raylite
from repro.execution.parallel import resolve_parallel_spec
from repro.serving.policy_server import (
    _BatchingFrontEnd,
    _Request,
    bucket_sizes,
)
from repro.utils.errors import RLGraphError


class PolicyServerActor:
    """One inference replica: a built agent behind the actor surface.

    Runs inside a raylite thread or process worker; the pool (or a
    remote :class:`~repro.serving.client.PolicyClient`) talks to it via
    ``act_batch``/``set_weights`` tasks through the actor mailbox.
    """

    def __init__(self, agent_factory: Callable, explore: bool = False,
                 replica_index: int = 0):
        try:
            self.agent = agent_factory(worker_index=replica_index)
        except TypeError:
            self.agent = agent_factory()
        self._act = self.agent.serving_act_fn(explore=explore)
        self.batches_served = 0
        self.requests_served = 0

    def act_batch(self, states) -> np.ndarray:
        states = np.asarray(states)
        actions = self._act(states)
        self.batches_served += 1
        self.requests_served += len(states)
        return np.asarray(actions)

    def warm_up(self, sizes) -> int:
        """Prime the compiled act plan per batch bucket.  Warm-up is
        synthetic traffic: the timestep counter (exploration schedule)
        is restored afterwards, mirroring PolicyServer._warm_up."""
        before = self.agent.timesteps
        zeros = self.agent.state_space.zeros
        for size in sizes:
            self._act(zeros(size=size))
        self.agent.timesteps = before
        return 0

    def set_weights(self, weights) -> int:
        self.agent.set_weights(weights)
        return 0

    def get_stats(self) -> dict:
        return {"batches_served": self.batches_served,
                "requests_served": self.requests_served}


class InferenceWorkerPool(_BatchingFrontEnd):
    """Shards micro-batched act requests over PolicyServerActor replicas.

    Args:
        agent_factory: builds one agent per replica (all replicas must
            share the architecture — the flat hot-swap layout is the
            same across them; pass the same seed for bitwise parity).
        state_space: the observation space served (shape validation at
            ``submit``) — passed explicitly because replicas may live
            across a process boundary.
        num_replicas: actor shard count.
        parallel_spec: raylite backend selection (thread/process), the
            same switch every executor takes.
    """

    def __init__(self, agent_factory: Callable, state_space,
                 num_replicas: int = 2, max_batch_size: int = 32,
                 batch_window: float = 0.002, explore: bool = False,
                 pad_batches: bool = True, parallel_spec=None,
                 name: str = "inference-pool", auto_start: bool = True):
        if num_replicas < 1:
            raise RLGraphError("num_replicas must be >= 1")
        from repro.spaces.space_utils import space_from_spec
        self.pad_batches = pad_batches
        self.parallel = resolve_parallel_spec(parallel_spec)
        factory = self.parallel.actor_factory(PolicyServerActor)
        self.replicas = [
            factory.remote(agent_factory, explore, i)
            for i in range(num_replicas)
        ]
        self._inflight: set = set()
        self._inflight_lock = threading.Lock()
        self._inflight_drained = threading.Event()
        self._inflight_drained.set()
        super().__init__(space_from_spec(state_space),
                         max_batch_size=max_batch_size,
                         batch_window=batch_window, name=name,
                         auto_start=auto_start)

    # -- batching hooks ------------------------------------------------------
    def _warm_up(self) -> None:
        """Warm every replica's compiled plan per batch bucket."""
        sizes = bucket_sizes(self.max_batch_size)
        raylite.get([r.warm_up.remote(sizes) for r in self.replicas])

    def _dispatch(self, requests: List[_Request]) -> None:
        """Route to the least-loaded replica; scatter on completion.

        Non-blocking: the completion callback (running on the replica's
        result path) distributes actions, so the collector immediately
        returns to assembling the next batch for the next replica.
        """
        obs = self._stack(requests)
        replica = min(self.replicas, key=lambda h: h.num_pending())
        ref = replica.act_batch.remote(obs)
        with self._inflight_lock:
            self._inflight.add(ref.id)
            self._inflight_drained.clear()
        ref.add_done_callback(
            functools.partial(self._on_batch_done, requests))

    def _on_batch_done(self, requests: List[_Request],
                       ref: raylite.ObjectRef) -> None:
        with self._inflight_lock:
            self._inflight.discard(ref.id)
            if not self._inflight:
                self._inflight_drained.set()
        try:
            actions = ref.result(timeout=0)
        except BaseException as exc:
            self.stats.record_error(len(requests))
            for req in requests:
                req.ref._fail(exc)
            return
        self._scatter(requests, np.asarray(actions)[:len(requests)])

    def _apply_weights(self, weights) -> None:
        """Broadcast the swap to every replica (FIFO per actor mailbox
        makes it batch-atomic on each); blocks until all confirmed so
        the returned future means 'the whole pool serves new weights'."""
        raylite.get([r.set_weights.remote(weights) for r in self.replicas],
                    timeout=30.0)

    # -- lifecycle ------------------------------------------------------------
    def stop(self, kill_replicas: bool = True) -> None:
        super().stop()
        # The collector has drained; wait for batches already dispatched
        # to replicas, so every accepted request is answered before the
        # replicas are reaped (the front end's drain-and-stop contract).
        self._inflight_drained.wait(timeout=30.0)
        if kill_replicas:
            for replica in self.replicas:
                try:
                    raylite.kill(replica)
                except Exception:
                    pass
            self.replicas = []

    def replica_stats(self) -> List[dict]:
        return raylite.get([r.get_stats.remote() for r in self.replicas])

    def __repr__(self):
        return (f"InferenceWorkerPool(replicas={len(self.replicas)}, "
                f"backend={self.parallel.backend!r}, "
                f"max_batch={self.max_batch_size})")
