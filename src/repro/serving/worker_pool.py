"""InferenceWorkerPool: micro-batched serving sharded over raylite actors.

One :class:`~repro.serving.policy_server.PolicyServer` batches well but
executes on one thread; when inference itself is the bottleneck (big
nets, or pure-Python preprocessing holding the GIL) the pool shards the
same micro-batching front end across N :class:`PolicyServerActor`
replicas — raylite thread actors by default, or **process** actors
(``parallel_spec="process"``) for real multi-core inference where each
batch decodes from shared memory in the worker.

Dispatch is asynchronous: the collector thread routes each assembled
batch to the least-loaded replica (``handle.num_pending()``, the same
mailbox-depth signal raylite schedulers see) and immediately resumes
collecting the next batch; the per-batch ``ObjectRef`` completion
callback scatters actions back to the per-request futures.  The pool
therefore keeps all replicas busy without ever blocking on one.

Weight hot-swap broadcasts the flat vector to every replica through the
normal actor mailboxes — FIFO per actor guarantees each replica applies
it between its own batches, so a mid-traffic swap is exactly as safe as
the single-server case (and ships one shared-memory block per process
replica, PR 4's invariant).
"""

from __future__ import annotations

import functools
import threading
from typing import Callable, List, Optional

import numpy as np

from repro import raylite
from repro.execution.parallel import resolve_parallel_spec
from repro.execution.supervision import (
    ReplicaFactory,
    Supervisor,
    resolve_supervision_spec,
)
from repro.serving.overload import (
    QueueDepthAutoscaler,
    resolve_autoscale_spec,
)
from repro.serving.policy_server import (
    _BatchingFrontEnd,
    _Request,
    bucket_sizes,
)
from repro.utils.errors import RLGraphError

# How many times one request may ride a crashed-replica batch before its
# future fails (each retry lands on a different, live replica).
_MAX_DISPATCH_ATTEMPTS = 5


class PolicyServerActor:
    """One inference replica: a built agent behind the actor surface.

    Runs inside a raylite thread or process worker; the pool (or a
    remote :class:`~repro.serving.client.PolicyClient`) talks to it via
    ``act_batch``/``set_weights`` tasks through the actor mailbox.
    """

    def __init__(self, agent_factory: Callable, explore: bool = False,
                 replica_index: int = 0):
        try:
            self.agent = agent_factory(worker_index=replica_index)
        except TypeError:
            self.agent = agent_factory()
        self._act = self.agent.serving_act_fn(explore=explore)
        self.batches_served = 0
        self.requests_served = 0

    def act_batch(self, states) -> np.ndarray:
        states = np.asarray(states)
        actions = self._act(states)
        self.batches_served += 1
        self.requests_served += len(states)
        return np.asarray(actions)

    def warm_up(self, sizes) -> int:
        """Prime the compiled act plan per batch bucket.  Warm-up is
        synthetic traffic: the timestep counter (exploration schedule)
        is restored afterwards, mirroring PolicyServer._warm_up."""
        before = self.agent.timesteps
        zeros = self.agent.state_space.zeros
        for size in sizes:
            self._act(zeros(size=size))
        self.agent.timesteps = before
        return 0

    def set_weights(self, weights) -> int:
        self.agent.set_weights(weights)
        return 0

    def get_stats(self) -> dict:
        return {"batches_served": self.batches_served,
                "requests_served": self.requests_served}


class InferenceWorkerPool(_BatchingFrontEnd):
    """Shards micro-batched act requests over PolicyServerActor replicas.

    Args:
        agent_factory: builds one agent per replica (all replicas must
            share the architecture — the flat hot-swap layout is the
            same across them; pass the same seed for bitwise parity).
        state_space: the observation space served (shape validation at
            ``submit``) — passed explicitly because replicas may live
            across a process boundary.
        num_replicas: actor shard count.
        parallel_spec: raylite backend selection (thread/process), the
            same switch every executor takes.
    """

    def __init__(self, agent_factory: Callable, state_space,
                 num_replicas: int = 2, max_batch_size: int = 32,
                 batch_window: float = 0.002, explore: bool = False,
                 pad_batches: bool = True, parallel_spec=None,
                 name: str = "inference-pool", auto_start: bool = True,
                 supervision_spec=None, admission_spec=None,
                 default_deadline=None, autoscale_spec=None):
        if num_replicas < 1:
            raise RLGraphError("num_replicas must be >= 1")
        from repro.spaces.space_utils import space_from_spec
        self.pad_batches = pad_batches
        self.parallel = resolve_parallel_spec(parallel_spec)
        self._agent_factory = agent_factory
        self._explore = explore
        factories = [
            ReplicaFactory(self.parallel, PolicyServerActor,
                           agent_factory, explore, i)
            for i in range(num_replicas)
        ]
        self.replicas = [factory() for factory in factories]
        # Monotonic replica index: autoscaled replicas get fresh slot
        # names even after earlier ones were retired.
        self._next_replica_index = num_replicas
        # The last hot-swapped weight vector: a restarted replica must
        # rejoin at the CURRENT version, not its factory-fresh init.
        self._current_weights = None
        self.supervision = resolve_supervision_spec(supervision_spec)
        self.supervisor = (Supervisor(self.supervision)
                           if self.supervision.enabled else None)
        if self.supervisor is not None:
            for i, (replica, factory) in enumerate(
                    zip(self.replicas, factories)):
                self.supervisor.register(
                    f"{name}-replica-{i}", replica, factory,
                    on_restart=self._sync_restarted_replica)
        self.autoscale = resolve_autoscale_spec(autoscale_spec)
        self.autoscaler = (QueueDepthAutoscaler(self.autoscale)
                           if self.autoscale is not None else None)
        self._inflight: set = set()
        self._inflight_lock = threading.Lock()
        self._inflight_drained = threading.Event()
        self._inflight_drained.set()
        # Requests routed but not yet resolved.  The autoscaling signal
        # is mailbox depth PLUS this: the collector routes batches
        # without blocking, so under overload the backlog sits in
        # replica mailboxes, not ours.
        self._inflight_requests = 0
        super().__init__(space_from_spec(state_space),
                         max_batch_size=max_batch_size,
                         batch_window=batch_window, name=name,
                         auto_start=auto_start,
                         admission_spec=admission_spec,
                         default_deadline=default_deadline,
                         # The collector must wake on silence so the
                         # autoscaler can shrink an idle pool.
                         tick=(self.autoscale.tick_interval
                               if self.autoscale is not None else None))

    # -- batching hooks ------------------------------------------------------
    def _warm_up(self) -> None:
        """Warm every replica's compiled plan per batch bucket."""
        sizes = bucket_sizes(self.max_batch_size)
        raylite.get([r.warm_up.remote(sizes) for r in self.replicas])

    def _sync_restarted_replica(self, handle) -> None:
        """Bring a restarted replica up to serving parity: warm its
        compiled act plans and re-push the current weight version (both
        ride the mailbox ahead of any batch routed to it)."""
        handle.warm_up.remote(bucket_sizes(self.max_batch_size))
        if self._current_weights is not None:
            handle.set_weights.remote(self._current_weights)

    def _live_replicas(self) -> List:
        """Replicas eligible for routing: dead ones are EXCLUDED so no
        batch is ever handed to a crashed replica.  With supervision on,
        the collector thread restarts them here (bounded backoff) —
        requests queue during the restart and none are dropped."""
        live = [h for h in self.replicas if h.is_alive()]
        if len(live) < len(self.replicas) and self.supervisor is not None:
            self.supervisor.probe()
            self.replicas = self.supervisor.handles()
            live = [h for h in self.replicas if h.is_alive()]
        return live

    # -- autoscaling ---------------------------------------------------------
    def outstanding(self) -> int:
        """Requests somewhere inside the pool: queued in the mailbox or
        routed to a replica and awaiting its result.  This — not bare
        mailbox depth — is the overload signal the autoscaler watches:
        the collector routes without blocking, so a saturated pool shows
        up as in-flight backlog, not as mailbox depth."""
        with self._inflight_lock:
            inflight = self._inflight_requests
        return self.queue_depth() + inflight

    def _maybe_autoscale(self) -> None:
        """Evaluate the queue-depth controller between batches (and on
        idle ticks).  Runs on the collector thread, so replica-list
        mutation never races dispatch."""
        if self.autoscaler is None or self._stopped.is_set():
            return
        decision = self.autoscaler.decide(self.outstanding(),
                                          len(self.replicas))
        if decision > 0:
            self._scale_up()
        elif decision < 0:
            self._scale_down()

    def _scale_up(self) -> None:
        """Add one replica, fully warmed, at the current weight version.

        The new replica only joins the routing set once its compiled
        act plans are primed and the current flat weights applied —
        scale events must preserve bitwise action parity, so a cold or
        stale replica never sees a batch.
        """
        index = self._next_replica_index
        self._next_replica_index += 1
        factory = ReplicaFactory(self.parallel, PolicyServerActor,
                                 self._agent_factory, self._explore, index)
        try:
            handle = factory()
            refs = [handle.warm_up.remote(
                bucket_sizes(self.max_batch_size))]
            if self._current_weights is not None:
                refs.append(handle.set_weights.remote(self._current_weights))
            raylite.get(refs, timeout=60.0)
        except Exception as exc:
            # A failed grow is a missed opportunity, not an outage:
            # existing replicas keep serving; the controller's cooldown
            # already spaces out the next attempt.
            import sys
            print(f"{self.name}: scale-up failed, staying at "
                  f"{len(self.replicas)} replicas: {exc}", file=sys.stderr)
            return
        if self.supervisor is not None:
            self.supervisor.register(
                f"{self.name}-replica-{index}", handle, factory,
                on_restart=self._sync_restarted_replica)
        self.replicas.append(handle)

    def _scale_down(self) -> None:
        """Retire one idle replica (newest first).

        Only a replica with an empty mailbox (``num_pending() == 0``)
        is eligible — since this runs on the collector thread, nothing
        can route to it concurrently, so the kill drops zero requests.
        A busy pool simply defers the shrink to a later tick.
        """
        for handle in reversed(self.replicas):
            try:
                if handle.num_pending() != 0:
                    continue
            except Exception:
                continue
            self.replicas.remove(handle)
            if self.supervisor is not None:
                slot_name = self.supervisor.name_of(handle)
                if slot_name is not None:
                    self.supervisor.unregister(slot_name)
            try:
                raylite.kill(handle)
            except Exception:
                pass
            return

    def _on_idle_tick(self) -> None:
        self._maybe_autoscale()

    def _dispatch(self, requests: List[_Request]) -> None:
        """Route to the least-loaded LIVE replica; scatter on completion.

        Non-blocking: the completion callback (running on the replica's
        result path) distributes actions, so the collector immediately
        returns to assembling the next batch for the next replica.
        """
        self._maybe_autoscale()
        live = self._live_replicas()
        if not live:
            raise RLGraphError(
                f"{self.name}: no live replicas to dispatch to")
        obs = self._stack(requests)
        replica = min(live, key=lambda h: h.num_pending())
        for req in requests:
            req.attempts += 1
        ref = replica.act_batch.remote(obs)
        with self._inflight_lock:
            self._inflight.add(ref.id)
            self._inflight_requests += len(requests)
            self._inflight_drained.clear()
        ref.add_done_callback(
            functools.partial(self._on_batch_done, requests))

    def _on_batch_done(self, requests: List[_Request],
                       ref: raylite.ObjectRef) -> None:
        with self._inflight_lock:
            self._inflight.discard(ref.id)
            self._inflight_requests -= len(requests)
            if not self._inflight:
                self._inflight_drained.set()
        try:
            actions = ref.result(timeout=0)
        except BaseException as exc:
            self._handle_failed_batch(requests, exc)
            return
        self._scatter(requests, np.asarray(actions)[:len(requests)])

    def _handle_failed_batch(self, requests: List[_Request],
                             exc: BaseException) -> None:
        """A dispatched batch died with its replica.  Supervised pools
        re-queue the requests (bounded attempts; the collector routes
        them to a live replica — zero requests dropped by a crash);
        unsupervised pools keep the seed behavior and fail them."""
        if self.supervisor is None or self._stopped.is_set():
            self.stats.record_error(len(requests))
            for req in requests:
                req.ref._fail(exc)
            return
        for req in requests:
            if req.attempts < _MAX_DISPATCH_ATTEMPTS:
                # No record_submit: the request was already counted.
                # It does count as a retry (and re-enters the queue
                # depth) — the metrics must show crash-induced
                # re-dispatches.
                self.stats.record_retry()
                self._depth_inc()
                self._mailbox.put(req)
            else:
                self.stats.record_error(1)
                req.ref._fail(exc)

    def _apply_weights(self, weights) -> None:
        """Broadcast the swap to every replica (FIFO per actor mailbox
        makes it batch-atomic on each); blocks until all confirmed so
        the returned future means 'the whole pool serves new weights'.
        A replica that dies mid-swap is restarted by supervision and
        receives the new version through the restart hook instead."""
        self._current_weights = weights
        if self.supervisor is None:  # seed behavior: all-or-error
            raylite.get([r.set_weights.remote(weights)
                         for r in self.replicas], timeout=30.0)
            return
        refs = []
        for replica in self._live_replicas():
            try:
                refs.append(replica.set_weights.remote(weights))
            except Exception:
                pass  # died after the liveness check: restart hook syncs
        try:
            raylite.get(refs, timeout=30.0)
        except Exception:
            pass

    # -- lifecycle ------------------------------------------------------------
    def stop(self, kill_replicas: bool = True) -> None:
        super().stop()
        # The collector has drained; wait for batches already dispatched
        # to replicas, so every accepted request is answered before the
        # replicas are reaped (the front end's drain-and-stop contract).
        self._inflight_drained.wait(timeout=30.0)
        if kill_replicas:
            for replica in self.replicas:
                try:
                    raylite.kill(replica)
                except Exception:
                    pass
            self.replicas = []

    def replica_stats(self) -> List[dict]:
        stats = []
        for replica in list(self.replicas):
            try:
                stats.append(raylite.get(replica.get_stats.remote()))
            except Exception:
                if self.supervisor is None:
                    raise
        return stats

    def metrics_snapshot(self) -> dict:
        """The front-end snapshot plus pool-level state: replica count,
        per-replica served counters, autoscale event log."""
        snap = super().metrics_snapshot()
        snap["replicas"] = len(self.replicas)
        snap["outstanding"] = self.outstanding()
        try:
            snap["replica_stats"] = self.replica_stats()
        except Exception:
            snap["replica_stats"] = []
        if self.autoscaler is not None:
            snap["autoscale"] = {
                "min_replicas": self.autoscale.min_replicas,
                "max_replicas": self.autoscale.max_replicas,
                "events": list(self.autoscaler.events),
            }
        if self.supervisor is not None:
            snap["restarts"] = self.supervisor.total_restarts
        return snap

    def __repr__(self):
        return (f"InferenceWorkerPool(replicas={len(self.replicas)}, "
                f"backend={self.parallel.backend!r}, "
                f"max_batch={self.max_batch_size})")
