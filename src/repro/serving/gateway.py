"""HTTP/JSON gateway in front of the micro-batching serving stack.

The in-process serving surface (:class:`PolicyServer`,
:class:`InferenceWorkerPool`) speaks python; real traffic speaks HTTP.
:class:`HttpGateway` bridges the two with stdlib only — an ``asyncio``
server on a background thread, no web framework:

* ``POST /act`` — body ``{"obs": [...]}``; optional ``X-Deadline-Ms``
  header carries the caller's remaining budget into the serving front
  end (the batch loop skips the request once it expires — the deadline
  is *propagated*, not merely enforced at the edge).
* ``GET /metrics`` — JSON: per-route client-facing latency/status
  counters plus the target's own ``metrics_snapshot()`` (queue depth,
  shed/reject/expired counters, batch-size histogram, autoscaler
  events).
* ``GET /healthz`` — liveness: 200 while the target accepts work.

Overload never looks like a hang: a bounded-queue rejection or CoDel
shed maps to **503** with a ``Retry-After`` hint, an expired deadline
to **504**, a malformed request to **400** — each with a typed JSON
body.  Connections are keep-alive HTTP/1.1, one in-flight request per
connection (the natural shape for a closed-loop policy client); the
micro-batcher, not the socket layer, provides the cross-client
parallelism.

Every request is bridged from the serving stack's thread-settled
``ObjectRef`` onto the event loop via ``call_soon_threadsafe`` — the
gateway thread never blocks on a policy computation, so thousands of
queued sockets cost one thread total.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.serving.overload import (
    DeadlineExceededError,
    OverloadError,
    RouteStats,
    ServerClosedError,
)
from repro.utils.errors import RLGraphError

_MAX_BODY = 8 * 1024 * 1024
_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error",
            503: "Service Unavailable", 504: "Gateway Timeout"}


class _BadRequest(RLGraphError):
    """Maps to a 400 with the message in the JSON body."""


class HttpGateway:
    """Serve a batching front end (server or pool) over HTTP/JSON.

    ``default_deadline`` (seconds) applies when a request carries no
    ``X-Deadline-Ms`` header; it bounds end-to-end time in the serving
    stack AND the gateway's own wait, so a wedged backend turns into a
    504, never a silently parked socket.  ``port=0`` binds an ephemeral
    port (read it from ``.address`` after ``start()``).
    """

    def __init__(self, target, host: str = "127.0.0.1", port: int = 0,
                 default_deadline: float = 1.0, name: str = "gateway"):
        if default_deadline <= 0:
            raise RLGraphError("default_deadline must be > 0")
        self.target = target
        self.host = host
        self.name = name
        self.default_deadline = float(default_deadline)
        self.routes: Dict[str, RouteStats] = {
            "/act": RouteStats(), "/metrics": RouteStats(),
            "/healthz": RouteStats(), "other": RouteStats()}
        self._requested_port = int(port)
        self._port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._shutdown: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "HttpGateway":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._ready.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run, daemon=True, name=self.name)
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RLGraphError(f"{self.name}: server failed to start "
                               f"within 10s")
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
            raise RLGraphError(
                f"{self.name}: startup failed: {self._startup_error!r}"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        thread, loop = self._thread, self._loop
        if thread is None or loop is None:
            return
        shutdown = self._shutdown
        if shutdown is not None:
            try:
                loop.call_soon_threadsafe(shutdown.set)
            except RuntimeError:
                pass  # loop already closed
        thread.join(timeout=10.0)
        self._thread = None
        self._loop = None

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()

    @property
    def address(self) -> Tuple[str, int]:
        if self._port is None:
            raise RLGraphError(f"{self.name}: not started")
        return (self.host, self._port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced in start()
            self._startup_error = exc
            self._ready.set()
        finally:
            loop.close()

    async def _main(self) -> None:
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, host=self.host,
            port=self._requested_port)
        self._port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()
            # Idle keep-alive connections park their handler in a read;
            # cancel them so the loop closes clean (no destroyed tasks).
            tasks = [task for task in asyncio.all_tasks()
                     if task is not asyncio.current_task()]
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

    # -- HTTP plumbing -------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                status, payload, extra = await self._dispatch(
                    method, path, headers, body)
                keep_alive = headers.get("connection", "") != "close"
                await self._write_response(
                    writer, status, payload, extra, keep_alive)
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            # Gateway shutdown cancelled this handler mid-read.  Exit
            # normally instead of re-raising: 3.11's StreamReaderProtocol
            # done-callback calls task.exception() without checking
            # cancelled() first and would log spurious tracebacks.
            pass
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Minimal HTTP/1.1 request parser: request line, headers,
        Content-Length body.  Returns None on a cleanly closed socket."""
        try:
            line = await reader.readline()
        except (ConnectionError, OSError):
            return None
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line: {line!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _BadRequest(f"body of {length} bytes exceeds the "
                              f"{_MAX_BODY}-byte limit")
        body = await reader.readexactly(length) if length else b""
        return method, path.split("?", 1)[0], headers, body

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, payload: Dict[str, Any],
                              extra_headers: Dict[str, str],
                              keep_alive: bool) -> None:
        body = json.dumps(payload).encode()
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                 "Content-Type: application/json",
                 f"Content-Length: {len(body)}",
                 f"Connection: {'keep-alive' if keep_alive else 'close'}"]
        lines.extend(f"{k}: {v}" for k, v in extra_headers.items())
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + body)
        await writer.drain()

    # -- routing -------------------------------------------------------------
    async def _dispatch(self, method: str, path: str,
                        headers: Dict[str, str], body: bytes):
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        stats = self.routes.get(path, self.routes["other"])
        extra: Dict[str, str] = {}
        try:
            if path == "/act":
                if method != "POST":
                    status, payload = 405, {"error": "method_not_allowed"}
                else:
                    status, payload = await self._route_act(headers, body)
            elif path == "/metrics":
                status, payload = 200, self.metrics_snapshot()
            elif path == "/healthz":
                status, payload = self._route_healthz()
            else:
                status, payload = 404, {"error": "not_found", "path": path}
        except OverloadError as exc:
            status = 503
            payload = {"error": "overload", "reason": exc.reason,
                       "queue_depth": exc.queue_depth,
                       "retry_after": exc.retry_after}
            if exc.retry_after:
                extra["Retry-After"] = f"{exc.retry_after:.3f}"
        except ServerClosedError as exc:
            status, payload = 503, {"error": "server_closed",
                                    "detail": str(exc)}
        except (DeadlineExceededError, asyncio.TimeoutError) as exc:
            status, payload = 504, {"error": "deadline_exceeded",
                                    "detail": str(exc)}
        except _BadRequest as exc:
            status, payload = 400, {"error": "bad_request",
                                    "detail": str(exc)}
        except Exception as exc:  # noqa: BLE001 - must answer the socket
            status, payload = 500, {"error": "internal",
                                    "detail": f"{type(exc).__name__}: {exc}"}
        stats.record(status, loop.time() - t0)
        return status, payload, extra

    def _route_healthz(self):
        running = True
        snapshot = getattr(self.target, "metrics_snapshot", None)
        if callable(snapshot):
            try:
                running = bool(snapshot().get("running", True))
            except Exception:  # noqa: BLE001
                running = False
        if running:
            return 200, {"status": "ok"}
        return 503, {"status": "stopped"}

    async def _route_act(self, headers: Dict[str, str], body: bytes):
        try:
            doc = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"body is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict) or "obs" not in doc:
            raise _BadRequest('body must be a JSON object with an "obs" key')
        try:
            obs = np.asarray(doc["obs"], dtype=self.target.state_space.dtype)
        except (TypeError, ValueError) as exc:
            raise _BadRequest(f"obs is not a valid array: {exc}") from exc
        budget = self.default_deadline
        raw = headers.get("x-deadline-ms")
        if raw is not None:
            try:
                budget = float(raw) / 1e3
            except ValueError as exc:
                raise _BadRequest(
                    f"X-Deadline-Ms is not a number: {raw!r}") from exc
            if budget <= 0:
                raise _BadRequest("X-Deadline-Ms must be > 0")
        try:
            ref = self.target.submit(obs, deadline=budget)
        except RLGraphError as exc:
            if isinstance(exc, (OverloadError, ServerClosedError)):
                raise
            raise _BadRequest(str(exc)) from exc
        action = await self._await_ref(ref, budget)
        return 200, {"action": np.asarray(action).tolist()}

    async def _await_ref(self, ref, budget: float):
        """Bridge a thread-settled ObjectRef onto the event loop.

        The serving front end owns the deadline (it fails the ref with
        :class:`DeadlineExceededError` once expired); the small grace on
        top of ``budget`` here is pure insurance against a wedged
        backend — it converts a would-be socket hang into a 504.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()

        def on_done(done_ref) -> None:
            def transfer() -> None:
                if future.done():
                    return
                try:
                    future.set_result(done_ref.result(0))
                except BaseException as exc:  # noqa: BLE001
                    future.set_exception(exc)
            loop.call_soon_threadsafe(transfer)

        ref.add_done_callback(on_done)
        return await asyncio.wait_for(future, timeout=budget + 1.0)

    # -- observability -------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, Any]:
        snap: Dict[str, Any] = {
            "gateway": {route: stats.snapshot()
                        for route, stats in self.routes.items()},
        }
        target_snapshot = getattr(self.target, "metrics_snapshot", None)
        if callable(target_snapshot):
            try:
                snap["target"] = target_snapshot()
            except Exception as exc:  # noqa: BLE001
                snap["target"] = {"error": f"{type(exc).__name__}: {exc}"}
        return snap


class HttpPolicyClient:
    """Minimal keep-alive HTTP client for an :class:`HttpGateway`.

    Mirrors :class:`PolicyClient`'s act surface over the wire;
    ``deadline_ms`` rides the ``X-Deadline-Ms`` header.  Raises the
    same typed errors the in-process path raises, so tests and benches
    can treat both paths uniformly.  Not thread-safe — one instance
    per driving thread (exactly like an ``http.client`` connection).
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 deadline_ms: Optional[float] = None):
        self.host, self.port = host, int(port)
        self.timeout = timeout
        self.deadline_ms = deadline_ms
        self._conn: Optional[http.client.HTTPConnection] = None

    @classmethod
    def for_gateway(cls, gateway: HttpGateway, **kwargs
                    ) -> "HttpPolicyClient":
        host, port = gateway.address
        return cls(host, port, **kwargs)

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def _request(self, method: str, path: str, body=None, headers=None):
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            payload = json.loads(response.read().decode() or "{}")
        except (ConnectionError, http.client.HTTPException, OSError):
            # One reconnect: the gateway may have closed an idle
            # keep-alive socket between requests.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            payload = json.loads(response.read().decode() or "{}")
        return response.status, dict(response.getheaders()), payload

    def act(self, obs, deadline_ms: Optional[float] = None):
        headers = {"Content-Type": "application/json"}
        budget = deadline_ms if deadline_ms is not None else self.deadline_ms
        if budget is not None:
            headers["X-Deadline-Ms"] = f"{budget:g}"
        body = json.dumps({"obs": np.asarray(obs).tolist()})
        status, resp_headers, payload = self._request(
            "POST", "/act", body=body, headers=headers)
        if status == 200:
            return np.asarray(payload["action"])
        if status == 503:
            retry_after = payload.get("retry_after")
            if retry_after is None:
                header = resp_headers.get("Retry-After")
                retry_after = float(header) if header else None
            raise OverloadError(
                f"gateway returned 503: {payload}",
                queue_depth=payload.get("queue_depth", 0),
                retry_after=retry_after,
                reason=payload.get("reason", payload.get("error", "unknown")))
        if status == 504:
            raise DeadlineExceededError(
                f"gateway returned 504: {payload.get('detail', '')}")
        raise RLGraphError(f"gateway returned {status}: {payload}")

    def metrics(self) -> Dict[str, Any]:
        status, _, payload = self._request("GET", "/metrics")
        if status != 200:
            raise RLGraphError(f"/metrics returned {status}: {payload}")
        return payload

    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        status, _, payload = self._request("GET", "/healthz")
        return status, payload

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def drive_http_load(gateway: HttpGateway, num_clients: int,
                    duration: float, deadline_ms: Optional[float] = None,
                    observations=None, join_timeout: float = 30.0
                    ) -> Dict[str, Any]:
    """Closed-loop HTTP load driver: the over-the-wire twin of
    :func:`repro.serving.client.drive_concurrent_load`.

    Spawns ``num_clients`` threads, each a keep-alive
    :class:`HttpPolicyClient` looping ``act`` on its own observation.
    Typed overload (503) and deadline (504) responses are counted, not
    fatal — measuring behavior AT overload is the point.  Returns
    ``requests`` (successes), ``attempts``, ``req_per_s``, ``p50_ms``/
    ``p99_ms`` over successes, ``shed_rate`` (overload / attempts),
    ``deadline_rate``, and ``stragglers``.  Any *untyped* client error
    fails the run loudly.
    """
    import threading
    import time as _time

    if observations is None:
        observations = gateway.target.state_space.sample(
            size=max(num_clients, 1))
    stop = threading.Event()
    lock = threading.Lock()
    latencies: list = []
    counts = {"ok": 0, "overload": 0, "deadline": 0}
    errors: list = []
    host, port = gateway.address

    def loop(index: int) -> None:
        client = HttpPolicyClient(host, port, deadline_ms=deadline_ms)
        obs = np.asarray(observations[index])
        try:
            while not stop.is_set():
                t0 = _time.perf_counter()
                try:
                    client.act(obs)
                    with lock:
                        counts["ok"] += 1
                        latencies.append(_time.perf_counter() - t0)
                except OverloadError as exc:
                    with lock:
                        counts["overload"] += 1
                    stop.wait(exc.retry_after or 0.002)
                except DeadlineExceededError:
                    with lock:
                        counts["deadline"] += 1
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)
        finally:
            client.close()

    threads = [threading.Thread(target=loop, args=(i,), daemon=True)
               for i in range(num_clients)]
    t0 = _time.perf_counter()
    for thread in threads:
        thread.start()
    _time.sleep(duration)
    stop.set()
    for thread in threads:
        thread.join(timeout=join_timeout)
    stragglers = sum(1 for thread in threads if thread.is_alive())
    wall = _time.perf_counter() - t0
    if errors:
        raise RLGraphError(
            f"drive_http_load: {len(errors)}/{num_clients} clients "
            f"failed with untyped errors; first: {errors[0]!r}"
        ) from errors[0]
    attempts = counts["ok"] + counts["overload"] + counts["deadline"]
    arr = np.asarray(latencies) if latencies else np.asarray([float("nan")])
    return {
        "requests": counts["ok"],
        "attempts": attempts,
        "wall_time": wall,
        "req_per_s": counts["ok"] / wall,
        "p50_ms": float(np.percentile(arr, 50)) * 1e3,
        "p99_ms": float(np.percentile(arr, 99)) * 1e3,
        "overload": counts["overload"],
        "deadline_expired": counts["deadline"],
        "shed_rate": counts["overload"] / attempts if attempts else 0.0,
        "deadline_rate": counts["deadline"] / attempts if attempts else 0.0,
        "stragglers": stragglers,
    }
