"""Overload robustness for the serving stack: admission control,
deadlines, CoDel shedding, and queue-driven autoscaling.

The micro-batching front ends (PR 5) accept every request into an
unbounded mailbox: a traffic spike grows queueing delay without bound
instead of failing fast — the opposite of what "heavy traffic from
millions of users" requires.  This module is the policy layer the front
ends and the HTTP gateway share:

* **Admission control** (:class:`AdmissionSpec`): a bounded request
  queue with a configurable full-queue policy — ``"reject"`` raises a
  typed :class:`OverloadError` at submit time (carrying the queue depth
  and a retry-after hint, so clients and the gateway can back off
  intelligently), ``"drop-oldest"`` fails the *oldest* queued request
  and admits the new one (freshest-first under overload).
* **CoDel-style shedding** (:class:`CoDelShedder`): even a bounded
  queue can sit persistently full, adding ``max_queue / throughput`` of
  latency to every request ("standing queue").  The shedder watches the
  *sojourn time* of dequeued requests; once the queueing delay stays
  above ``target`` for a full ``interval``, it starts shedding at
  dequeue with the classic ``interval / sqrt(drop_count)`` control law
  until the standing queue drains.
* **Deadlines**: requests carry an absolute expiry; the batch loop
  fails expired requests with :class:`DeadlineExceededError` instead of
  wasting a batch slot executing an answer nobody is waiting for.
* **Autoscaling** (:class:`QueueDepthAutoscaler`): a deliberately
  boring controller — sustained queue depth above the high watermark
  grows the replica set, sustained idleness below the low watermark
  shrinks it, with a cooldown between actions so restarts/warm-ups
  never thrash.  The decision function is pure (injectable clock) so
  property tests drive it through scenarios in microseconds.

Everything here is deterministic and dependency-free; the stateful
pieces take explicit ``now`` values so tests never sleep.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.utils.errors import RLGraphError


# ---------------------------------------------------------------------------
# Typed errors
# ---------------------------------------------------------------------------
class OverloadError(RLGraphError):
    """The serving layer refused (or shed) a request to protect latency.

    Carries ``queue_depth`` (depth observed when the decision was made),
    ``retry_after`` (seconds — the client backoff hint, also surfaced as
    the HTTP ``Retry-After`` header) and ``reason`` (``"queue_full"``,
    ``"dropped_oldest"`` or ``"shed"``).
    """

    def __init__(self, message: str, queue_depth: Optional[int] = None,
                 retry_after: Optional[float] = None,
                 reason: str = "overload"):
        super().__init__(message)
        self.queue_depth = queue_depth
        self.retry_after = retry_after
        self.reason = reason


class DeadlineExceededError(RLGraphError):
    """A request's deadline expired before (or while) it was served.

    ``waited`` is how long the request sat in the system; ``budget`` is
    the deadline it was admitted with (both seconds, either may be
    ``None`` when unknown).
    """

    def __init__(self, message: str, waited: Optional[float] = None,
                 budget: Optional[float] = None):
        super().__init__(message)
        self.waited = waited
        self.budget = budget


class ServerClosedError(RLGraphError):
    """The serving front end was stopped; the request was not served.

    Raised synchronously by ``submit`` after ``stop()`` and used to fail
    any request that raced into the mailbox while the stop drain ran —
    callers get this immediately instead of hanging until their own
    timeout.
    """


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------
def deadline_from_budget(budget: Optional[float],
                         now: Optional[float] = None) -> Optional[float]:
    """An absolute monotonic deadline for a relative seconds budget."""
    if budget is None:
        return None
    if budget < 0:
        raise RLGraphError(f"deadline budget must be >= 0, got {budget}")
    return (now if now is not None else time.perf_counter()) + budget


def remaining(deadline: Optional[float],
              now: Optional[float] = None) -> Optional[float]:
    """Seconds left before ``deadline`` (may be negative; None = no
    deadline)."""
    if deadline is None:
        return None
    return deadline - (now if now is not None else time.perf_counter())


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------
_ADMISSION_POLICIES = ("reject", "drop-oldest")


class AdmissionSpec:
    """Resolved admission-control configuration for one front end.

    ``max_queue=None`` disables admission entirely — the unbounded
    pre-overload behavior, kept as the config ablation the overload
    bench compares against.
    """

    def __init__(self, max_queue: Optional[int] = None,
                 policy: str = "reject",
                 codel_target: Optional[float] = None,
                 codel_interval: float = 0.1,
                 retry_after: float = 0.05):
        if max_queue is not None and max_queue < 1:
            raise RLGraphError("max_queue must be >= 1 (or None)")
        if policy not in _ADMISSION_POLICIES:
            raise RLGraphError(
                f"Unknown admission policy {policy!r}; expected one of "
                f"{_ADMISSION_POLICIES}")
        if codel_target is not None and codel_target <= 0:
            raise RLGraphError("codel_target must be > 0 (or None)")
        if codel_interval <= 0:
            raise RLGraphError("codel_interval must be > 0")
        if retry_after < 0:
            raise RLGraphError("retry_after must be >= 0")
        self.max_queue = None if max_queue is None else int(max_queue)
        self.policy = policy
        self.codel_target = codel_target
        self.codel_interval = float(codel_interval)
        self.retry_after = float(retry_after)

    @property
    def enabled(self) -> bool:
        return self.max_queue is not None or self.codel_target is not None

    def make_shedder(self) -> Optional["CoDelShedder"]:
        if self.codel_target is None:
            return None
        return CoDelShedder(self.codel_target, self.codel_interval)

    def __repr__(self):
        return (f"AdmissionSpec(max_queue={self.max_queue}, "
                f"policy={self.policy!r}, codel_target={self.codel_target}, "
                f"codel_interval={self.codel_interval}, "
                f"retry_after={self.retry_after})")


_ADMISSION_KEYS = {"max_queue", "policy", "codel_target", "codel_interval",
                   "retry_after"}


def resolve_admission_spec(spec) -> AdmissionSpec:
    """Resolve an ``admission_spec`` config value.

    ``None`` — disabled (unbounded queue, the pre-overload seed
    behavior).  An int — ``max_queue`` with the default ``"reject"``
    policy.  A dict may set any of ``max_queue``, ``policy``,
    ``codel_target``, ``codel_interval``, ``retry_after``.  An
    :class:`AdmissionSpec` passes through.
    """
    if isinstance(spec, AdmissionSpec):
        return spec
    if spec is None:
        return AdmissionSpec()
    if isinstance(spec, bool):
        raise RLGraphError(
            "admission_spec must be None, int, dict or AdmissionSpec — "
            "pass max_queue explicitly instead of a bool")
    if isinstance(spec, int):
        return AdmissionSpec(max_queue=spec)
    if isinstance(spec, dict):
        unknown = set(spec) - _ADMISSION_KEYS
        if unknown:
            raise RLGraphError(
                f"Unknown admission_spec keys {sorted(unknown)}; "
                f"expected a subset of {sorted(_ADMISSION_KEYS)}")
        return AdmissionSpec(**spec)
    raise RLGraphError(
        f"admission_spec must be None, int, dict or AdmissionSpec, "
        f"got {type(spec).__name__}")


class CoDelShedder:
    """Controlled-delay shedding on the dequeue path.

    The CoDel insight: queue *length* is a bad overload signal (bursts
    are fine), queueing *delay that persists* is the real problem.  The
    collector reports each dequeued request's sojourn time; once the
    delay has stayed above ``target`` for a full ``interval`` the
    shedder enters the dropping state and sheds with the
    ``interval / sqrt(drop_count)`` control law — shedding accelerates
    while the standing queue persists, and stops the moment a request
    sojourns under target (or the queue empties).

    Purely functional in time: callers pass ``now``, so tests drive the
    state machine through whole scenarios without sleeping.
    """

    def __init__(self, target: float, interval: float = 0.1):
        if target <= 0:
            raise RLGraphError("codel target must be > 0")
        if interval <= 0:
            raise RLGraphError("codel interval must be > 0")
        self.target = float(target)
        self.interval = float(interval)
        self._first_above: Optional[float] = None
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0

    def on_dequeue(self, sojourn: float, now: Optional[float] = None,
                   queue_depth: int = 0) -> bool:
        """Report one dequeued request; True means shed it."""
        if now is None:
            now = time.perf_counter()
        if sojourn < self.target or queue_depth == 0:
            # Delay back under control: leave dropping state entirely.
            self._first_above = None
            self._dropping = False
            self._drop_count = 0
            return False
        if self._dropping:
            if now >= self._drop_next:
                self._drop_count += 1
                self._drop_next = now + self.interval / math.sqrt(
                    self._drop_count)
                return True
            return False
        if self._first_above is None:
            # Above target, but maybe just a burst: arm the interval.
            self._first_above = now + self.interval
            return False
        if now >= self._first_above:
            # Persistently above target for >= interval: start shedding.
            self._dropping = True
            self._drop_count = 1
            self._drop_next = now + self.interval
            return True
        return False

    @property
    def dropping(self) -> bool:
        return self._dropping

    def __repr__(self):
        return (f"CoDelShedder(target={self.target}, "
                f"interval={self.interval}, dropping={self._dropping})")


# ---------------------------------------------------------------------------
# Queue-depth-driven autoscaling
# ---------------------------------------------------------------------------
class AutoscaleSpec:
    """Resolved autoscaler configuration for an InferenceWorkerPool.

    ``high_watermark``/``low_watermark`` are queue depths (requests
    waiting in the front-end mailbox); depth must stay beyond a
    watermark for ``sustain``/``idle_after`` seconds before the pool
    grows/shrinks, and ``cooldown`` seconds must pass between any two
    scale actions.  ``tick_interval`` is how often the collector wakes
    to evaluate the controller when no traffic is flowing (shrink must
    trigger on *silence*).
    """

    def __init__(self, min_replicas: int = 1, max_replicas: int = 4,
                 high_watermark: int = 8, low_watermark: int = 1,
                 sustain: float = 0.25, idle_after: float = 1.0,
                 cooldown: float = 1.0, tick_interval: float = 0.05):
        if min_replicas < 1:
            raise RLGraphError("min_replicas must be >= 1")
        if max_replicas < min_replicas:
            raise RLGraphError("max_replicas must be >= min_replicas")
        if low_watermark < 0 or high_watermark <= low_watermark:
            raise RLGraphError(
                "need high_watermark > low_watermark >= 0")
        if min(sustain, idle_after, cooldown) < 0:
            raise RLGraphError("sustain/idle_after/cooldown must be >= 0")
        if tick_interval <= 0:
            raise RLGraphError("tick_interval must be > 0")
        self.min_replicas = int(min_replicas)
        self.max_replicas = int(max_replicas)
        self.high_watermark = int(high_watermark)
        self.low_watermark = int(low_watermark)
        self.sustain = float(sustain)
        self.idle_after = float(idle_after)
        self.cooldown = float(cooldown)
        self.tick_interval = float(tick_interval)

    def __repr__(self):
        return (f"AutoscaleSpec(replicas=[{self.min_replicas}, "
                f"{self.max_replicas}], high={self.high_watermark}, "
                f"low={self.low_watermark}, sustain={self.sustain}, "
                f"idle_after={self.idle_after}, cooldown={self.cooldown})")


_AUTOSCALE_KEYS = {"min_replicas", "max_replicas", "high_watermark",
                   "low_watermark", "sustain", "idle_after", "cooldown",
                   "tick_interval"}


def resolve_autoscale_spec(spec) -> Optional[AutoscaleSpec]:
    """``None``/``False`` — disabled.  A dict sets any
    :class:`AutoscaleSpec` knob.  A spec passes through."""
    if spec is None or spec is False:
        return None
    if isinstance(spec, AutoscaleSpec):
        return spec
    if isinstance(spec, dict):
        unknown = set(spec) - _AUTOSCALE_KEYS
        if unknown:
            raise RLGraphError(
                f"Unknown autoscale_spec keys {sorted(unknown)}; "
                f"expected a subset of {sorted(_AUTOSCALE_KEYS)}")
        return AutoscaleSpec(**spec)
    raise RLGraphError(
        f"autoscale_spec must be None, dict or AutoscaleSpec, "
        f"got {type(spec).__name__}")


class QueueDepthAutoscaler:
    """Hysteresis controller: sustained depth grows, sustained idleness
    shrinks, cooldown separates actions.

    :meth:`decide` is side-effect-free apart from its own bookkeeping
    and never touches replicas — the pool owns the (blocking) scale
    mechanics, this owns only the *when*.
    """

    def __init__(self, spec: AutoscaleSpec,
                 clock=time.perf_counter):
        self.spec = spec
        self._clock = clock
        self._above_since: Optional[float] = None
        self._below_since: Optional[float] = None
        self._last_action_at: Optional[float] = None
        self.events: List[Dict[str, Any]] = []

    def _in_cooldown(self, now: float) -> bool:
        return (self._last_action_at is not None
                and now - self._last_action_at < self.spec.cooldown)

    def decide(self, queue_depth: int, num_replicas: int,
               now: Optional[float] = None) -> int:
        """+1 = grow, -1 = shrink, 0 = hold."""
        if now is None:
            now = self._clock()
        spec = self.spec
        if queue_depth >= spec.high_watermark:
            self._below_since = None
            if self._above_since is None:
                self._above_since = now
            if (num_replicas < spec.max_replicas
                    and now - self._above_since >= spec.sustain
                    and not self._in_cooldown(now)):
                self._record(now, "grow", queue_depth, num_replicas)
                return 1
            return 0
        if queue_depth <= spec.low_watermark:
            self._above_since = None
            if self._below_since is None:
                self._below_since = now
            if (num_replicas > spec.min_replicas
                    and now - self._below_since >= spec.idle_after
                    and not self._in_cooldown(now)):
                self._record(now, "shrink", queue_depth, num_replicas)
                return -1
            return 0
        # Between watermarks: the comfortable band, reset both timers.
        self._above_since = None
        self._below_since = None
        return 0

    def _record(self, now: float, action: str, depth: int,
                replicas: int) -> None:
        self._last_action_at = now
        self._above_since = None
        self._below_since = None
        self.events.append({"at": now, "action": action,
                            "queue_depth": depth, "replicas": replicas})

    def __repr__(self):
        return (f"QueueDepthAutoscaler({self.spec!r}, "
                f"events={len(self.events)})")


# ---------------------------------------------------------------------------
# Per-route metrics (used by the HTTP gateway)
# ---------------------------------------------------------------------------
class RouteStats:
    """Counters + latency percentiles for one gateway route
    (thread-safe; bounded sample memory like ServerStats)."""

    MAX_LATENCY_SAMPLES = 50_000

    def __init__(self):
        self._lock = threading.Lock()
        self.requests = 0
        self.by_status: Dict[int, int] = {}
        self._latencies: List[float] = []

    def record(self, status: int, latency: float) -> None:
        with self._lock:
            self.requests += 1
            self.by_status[status] = self.by_status.get(status, 0) + 1
            if len(self._latencies) < self.MAX_LATENCY_SAMPLES:
                self._latencies.append(latency)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            latencies = np.asarray(self._latencies)
            snap: Dict[str, Any] = {
                "requests": self.requests,
                "by_status": dict(sorted(self.by_status.items())),
            }
            if latencies.size:
                snap["p50_ms"] = round(
                    float(np.percentile(latencies, 50)) * 1e3, 3)
                snap["p99_ms"] = round(
                    float(np.percentile(latencies, 99)) * 1e3, 3)
            return snap
