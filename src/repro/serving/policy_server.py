"""PolicyServer: dynamic micro-batching inference over a built agent.

The ROADMAP's north star is serving a trained policy to heavy concurrent
traffic; after PRs 2-4 one compiled ``act`` call is fast, so the
remaining win is *amortizing* it.  Many clients each hold one
observation; executing them one by one pays the full Python dispatch +
session overhead per request.  The server instead collects concurrent
requests into micro-batches — up to ``max_batch_size`` requests, waiting
at most ``batch_window`` seconds for stragglers — and issues ONE
compiled ``get_greedy_actions`` call for the whole batch, then scatters
the per-row actions back to each caller.

Request/response plumbing deliberately reuses raylite's mailbox
machinery rather than growing a parallel future type: requests queue in
a ``queue.Queue`` exactly like an actor mailbox, and every pending
request is a :class:`raylite.ObjectRef` — the same event-driven future
clients already know from ``.remote()`` calls (``ref.result()`` blocks,
``add_done_callback`` composes).

Weight hot-swap rides the same mailbox: :meth:`PolicyServer.set_weights`
enqueues a control item carrying the flat weight vector (PR 4's
zero-copy sync path), and the batching loop applies it *between*
batches — a running server updates mid-traffic without dropping or
corrupting a single request.

Batch shapes are quantized to power-of-two buckets (``pad_batches``) so
the backend sees a handful of recurring batch sizes instead of an
arbitrary one per window; each bucket's compiled act plan and its NumPy
allocations are warmed once at :meth:`start`, keeping tail latency flat
from the first request on.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.raylite import ObjectRef
from repro.utils.errors import RLGraphError


class ServerStats:
    """Request/batch counters and latency percentiles (thread-safe)."""

    MAX_LATENCY_SAMPLES = 50_000

    def __init__(self):
        self._lock = threading.Lock()
        self.requests = 0
        self.batches = 0
        self.errors = 0
        self.weight_swaps = 0
        self.weight_swap_failures = 0
        self.max_batch = 0
        self._batched_requests = 0
        self._latencies: List[float] = []

    def record_batch(self, size: int, latencies) -> None:
        with self._lock:
            self.batches += 1
            self._batched_requests += size
            self.max_batch = max(self.max_batch, size)
            if len(self._latencies) < self.MAX_LATENCY_SAMPLES:
                self._latencies.extend(latencies)

    def record_submit(self) -> None:
        with self._lock:
            self.requests += 1

    def record_error(self, count: int = 1) -> None:
        with self._lock:
            self.errors += count

    def record_swap(self) -> None:
        with self._lock:
            self.weight_swaps += 1

    def record_swap_failure(self) -> None:
        with self._lock:
            self.weight_swap_failures += 1

    @property
    def mean_batch_size(self) -> float:
        with self._lock:
            return (self._batched_requests / self.batches
                    if self.batches else 0.0)

    def latency(self, percentile: float) -> Optional[float]:
        """Latency percentile in seconds (None before any request)."""
        with self._lock:
            if not self._latencies:
                return None
            return float(np.percentile(self._latencies, percentile))

    def as_dict(self) -> Dict[str, Any]:
        p50, p99 = self.latency(50), self.latency(99)
        with self._lock:
            return {
                "requests": self.requests,
                "batches": self.batches,
                "errors": self.errors,
                "weight_swaps": self.weight_swaps,
                "weight_swap_failures": self.weight_swap_failures,
                "mean_batch_size": round(
                    self._batched_requests / self.batches, 2)
                    if self.batches else 0.0,
                "max_batch_size": self.max_batch,
                "p50_latency_ms": round(p50 * 1e3, 3) if p50 else None,
                "p99_latency_ms": round(p99 * 1e3, 3) if p99 else None,
            }


class _Request:
    __slots__ = ("obs", "ref", "t_submit", "attempts")

    def __init__(self, obs, ref: ObjectRef, t_submit: float):
        self.obs = obs
        self.ref = ref
        self.t_submit = t_submit
        # Dispatch attempts so far: a supervised worker pool re-queues
        # the requests of a batch lost to a replica crash (bounded — see
        # InferenceWorkerPool._on_batch_done) instead of failing them.
        self.attempts = 0


class _Control:
    """A mailbox item that is not a request (weight swap)."""

    __slots__ = ("kind", "value", "ref")

    def __init__(self, kind: str, value, ref: ObjectRef):
        self.kind = kind
        self.value = value
        self.ref = ref


_STOP = object()


def bucket_size(n: int, max_batch_size: int) -> int:
    """The power-of-two batch bucket for ``n`` (capped at the max)."""
    if n >= max_batch_size:
        return max_batch_size
    b = 1
    while b < n:
        b <<= 1
    return min(b, max_batch_size)


def bucket_sizes(max_batch_size: int):
    """All batch buckets a server can see (what warm-up must prime)."""
    sizes = {max_batch_size}
    b = 1
    while b < max_batch_size:
        sizes.add(b)
        b <<= 1
    return sorted(sizes)


class _BatchingFrontEnd:
    """Shared micro-batching front end (mailbox + collector loop).

    Subclasses implement :meth:`_dispatch` (execute one collected batch)
    and :meth:`_apply_weights` (the between-batches hot swap).
    """

    def __init__(self, state_space, max_batch_size: int = 32,
                 batch_window: float = 0.002, name: str = "policy-server",
                 auto_start: bool = True):
        if max_batch_size < 1:
            raise RLGraphError("max_batch_size must be >= 1")
        if batch_window < 0:
            raise RLGraphError("batch_window must be >= 0")
        self.state_space = state_space
        self.max_batch_size = int(max_batch_size)
        self.batch_window = float(batch_window)
        self.name = name
        self.stats = ServerStats()
        self._mailbox: "queue.Queue" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        if auto_start:
            self.start()

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "_BatchingFrontEnd":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stopped.clear()
        self._warm_up()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name=self.name)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Drain-and-stop: requests already queued are still served (the
        sentinel sits behind them in the mailbox), new submits fail.
        A request that raced past the submit-time check while stop ran
        is failed here with the clear not-running error rather than
        left to hang its caller until timeout."""
        if self._thread is None:
            return
        self._stopped.set()
        self._mailbox.put(_STOP)
        self._thread.join(timeout=30.0)
        self._thread = None
        while True:
            try:
                item = self._mailbox.get_nowait()
            except queue.Empty:
                break
            if isinstance(item, (_Request, _Control)):
                item.ref._fail(RLGraphError(
                    f"{self.name}: server is not running"))

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()

    def _warm_up(self) -> None:  # pragma: no cover - overridden
        pass

    # -- client surface ------------------------------------------------------
    def submit(self, obs) -> ObjectRef:
        """Enqueue one observation; returns a raylite-style future for
        its action.  Shape problems fail *here*, synchronously, with the
        expected shapes spelled out — they never poison a batch."""
        if self._stopped.is_set() or self._thread is None:
            raise RLGraphError(f"{self.name}: server is not running")
        obs = np.asarray(obs)
        expected = self.state_space.shape
        if obs.shape != expected:
            raise RLGraphError(
                f"{self.name}: observation of shape {obs.shape} does not "
                f"match the state space shape {expected} — submit exactly "
                f"one unbatched observation per request")
        ref = ObjectRef()
        self.stats.record_submit()
        self._mailbox.put(_Request(obs, ref, time.perf_counter()))
        # Re-check after the put: a stop() racing this submit may have
        # already drained the mailbox, leaving the request unread.
        # Settle-once semantics make this safe — if the loop (or the
        # stop-drain) did handle it, this _fail is a no-op.
        thread = self._thread
        if self._stopped.is_set() and (thread is None
                                       or not thread.is_alive()):
            ref._fail(RLGraphError(f"{self.name}: server is not running"))
        return ref

    def act(self, obs, timeout: Optional[float] = None):
        """Synchronous single-observation act."""
        return self.submit(obs).result(timeout)

    def set_weights(self, weights, wait: bool = False) -> ObjectRef:
        """Hot-swap policy weights mid-traffic.

        ``weights`` is a flat float32 vector (``get_weights(flat=True)``)
        or a per-variable dict; the swap applies between micro-batches,
        so no in-flight request ever sees a half-written policy.  Returns
        a future resolving once the swap is applied (``wait=True`` blocks
        on it).
        """
        if self._thread is None or not self._thread.is_alive():
            raise RLGraphError(f"{self.name}: server is not running")
        ref = ObjectRef()
        self._mailbox.put(_Control("weights", weights, ref))
        if wait:
            ref.result(timeout=30.0)
        return ref

    # -- the batching loop ---------------------------------------------------
    def _loop(self) -> None:
        while True:
            item = self._mailbox.get()
            if item is _STOP:
                return
            requests: List[_Request] = []
            controls: List[_Control] = []
            if isinstance(item, _Control):
                controls.append(item)
            else:
                requests.append(item)
                deadline = time.perf_counter() + self.batch_window
                while len(requests) < self.max_batch_size:
                    remaining = deadline - time.perf_counter()
                    try:
                        if remaining > 0:
                            nxt = self._mailbox.get(timeout=remaining)
                        else:
                            # Window closed: opportunistically drain what
                            # is already queued, never wait further.
                            nxt = self._mailbox.get_nowait()
                    except queue.Empty:
                        break
                    if nxt is _STOP:
                        # Serve this batch, then re-see the sentinel.
                        self._mailbox.put(_STOP)
                        break
                    if isinstance(nxt, _Control):
                        controls.append(nxt)
                    else:
                        requests.append(nxt)
            if requests:
                try:
                    self._dispatch(requests)
                except BaseException as exc:
                    self.stats.record_error(len(requests))
                    for req in requests:
                        req.ref._fail(exc)
            # Controls apply BETWEEN batches: the swap never tears a
            # batch that was already being assembled.
            for control in controls:
                try:
                    self._apply_weights(control.value)
                    self.stats.record_swap()
                    control.ref._resolve(True)
                except BaseException as exc:
                    # Most swap callers are fire-and-forget (executor
                    # weight_listeners): failing only the ref would be
                    # silent, leaving the server on stale weights with
                    # no trace — count it and warn loudly as well.
                    self.stats.record_swap_failure()
                    import sys
                    print(f"{self.name}: weight hot-swap FAILED, still "
                          f"serving previous weights: {exc}",
                          file=sys.stderr)
                    control.ref._fail(exc)

    # -- to be implemented ---------------------------------------------------
    def _dispatch(self, requests: List[_Request]) -> None:
        raise NotImplementedError

    def _apply_weights(self, weights) -> None:
        raise NotImplementedError

    # -- shared batch helpers ------------------------------------------------
    def _stack(self, requests: List[_Request]):
        """Stack request observations, padded up to the batch bucket."""
        obs = np.stack([r.obs for r in requests])
        n = len(requests)
        if self.pad_batches:
            target = bucket_size(n, self.max_batch_size)
            if target > n:
                pad = np.broadcast_to(obs[-1], (target - n,) + obs.shape[1:])
                obs = np.concatenate([obs, pad], axis=0)
        return obs

    def _scatter(self, requests: List[_Request], actions) -> None:
        """Resolve each request's future with its row of the batch."""
        actions = np.asarray(actions)
        now = time.perf_counter()
        for i, req in enumerate(requests):
            req.ref._resolve(actions[i])
        self.stats.record_batch(
            len(requests), [now - r.t_submit for r in requests])


class PolicyServer(_BatchingFrontEnd):
    """In-process micro-batching policy server over one built agent.

    Args:
        agent: a built :class:`~repro.agents.agent.Agent`; requests run
            through its greedy act endpoint (``explore=False``, the
            serving default) via the cached compiled call path.
        max_batch_size: micro-batch cap (one compiled call serves up to
            this many concurrent requests).
        batch_window: how long (seconds) an open batch waits for
            stragglers.  ``0`` still drains already-queued requests —
            the knob trades tail latency for batching opportunity.
        explore: serve exploratory actions instead of greedy ones
            (eval traffic wants False; self-play style traffic may not).
        pad_batches: quantize batch shapes to power-of-two buckets so
            the backend sees few distinct shapes (warmed at start).
        auto_start: start the batching thread on construction.
    """

    def __init__(self, agent, max_batch_size: int = 32,
                 batch_window: float = 0.002, explore: bool = False,
                 pad_batches: bool = True, name: str = "policy-server",
                 auto_start: bool = True):
        if agent.graph is None:
            raise RLGraphError("PolicyServer needs a built agent")
        self.agent = agent
        self.explore = explore
        # Padding feeds phantom duplicate rows through the act call; on
        # the greedy path that is free, but with explore=True each
        # phantom row would advance the exploration schedule and burn
        # RNG draws — so exploratory serving never pads.
        self.pad_batches = pad_batches and not explore
        self._act = agent.serving_act_fn(explore=explore)
        super().__init__(agent.state_space, max_batch_size=max_batch_size,
                         batch_window=batch_window, name=name,
                         auto_start=auto_start)

    def _warm_up(self) -> None:
        """Prime the compiled act plan and its allocations for every
        batch bucket, so no live request pays first-call latency.
        Warm-up traffic is synthetic: the agent's timestep counter (and
        with it any exploration schedule) is restored afterwards."""
        before = self.agent.timesteps
        zeros = self.state_space.zeros
        for size in bucket_sizes(self.max_batch_size):
            self._act(zeros(size=size))
        self.agent.timesteps = before

    def _dispatch(self, requests: List[_Request]) -> None:
        obs = self._stack(requests)
        actions = self._act(obs)
        self._scatter(requests, actions[:len(requests)])

    def _apply_weights(self, weights) -> None:
        self.agent.set_weights(weights)

    def __repr__(self):
        return (f"PolicyServer(agent={type(self.agent).__name__}, "
                f"max_batch={self.max_batch_size}, "
                f"window={self.batch_window * 1e3:.1f}ms)")
