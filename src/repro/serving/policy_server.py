"""PolicyServer: dynamic micro-batching inference over a built agent.

The ROADMAP's north star is serving a trained policy to heavy concurrent
traffic; after PRs 2-4 one compiled ``act`` call is fast, so the
remaining win is *amortizing* it.  Many clients each hold one
observation; executing them one by one pays the full Python dispatch +
session overhead per request.  The server instead collects concurrent
requests into micro-batches — up to ``max_batch_size`` requests, waiting
at most ``batch_window`` seconds for stragglers — and issues ONE
compiled ``get_greedy_actions`` call for the whole batch, then scatters
the per-row actions back to each caller.

Request/response plumbing deliberately reuses raylite's mailbox
machinery rather than growing a parallel future type: requests queue in
a ``queue.Queue`` exactly like an actor mailbox, and every pending
request is a :class:`raylite.ObjectRef` — the same event-driven future
clients already know from ``.remote()`` calls (``ref.result()`` blocks,
``add_done_callback`` composes).

Weight hot-swap rides the same mailbox: :meth:`PolicyServer.set_weights`
enqueues a control item carrying the flat weight vector (PR 4's
zero-copy sync path), and the batching loop applies it *between*
batches — a running server updates mid-traffic without dropping or
corrupting a single request.

Batch shapes are quantized to power-of-two buckets (``pad_batches``) so
the backend sees a handful of recurring batch sizes instead of an
arbitrary one per window; each bucket's compiled act plan and its NumPy
allocations are warmed once at :meth:`start`, keeping tail latency flat
from the first request on.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.raylite import ObjectRef
from repro.serving.overload import (
    DeadlineExceededError,
    OverloadError,
    ServerClosedError,
    deadline_from_budget,
    resolve_admission_spec,
)
from repro.utils.errors import RLGraphError


class ServerStats:
    """Request/batch counters and latency percentiles (thread-safe)."""

    MAX_LATENCY_SAMPLES = 50_000

    def __init__(self):
        self._lock = threading.Lock()
        self.requests = 0
        self.batches = 0
        self.errors = 0
        self.weight_swaps = 0
        self.weight_swap_failures = 0
        self.max_batch = 0
        self.rejected = 0
        self.shed = 0
        self.expired = 0
        self.retries = 0
        self._batched_requests = 0
        self._batch_hist: Dict[int, int] = {}
        self._latencies: List[float] = []

    def record_batch(self, size: int, latencies) -> None:
        with self._lock:
            self.batches += 1
            self._batched_requests += size
            self.max_batch = max(self.max_batch, size)
            self._batch_hist[size] = self._batch_hist.get(size, 0) + 1
            if len(self._latencies) < self.MAX_LATENCY_SAMPLES:
                self._latencies.extend(latencies)

    def record_submit(self) -> None:
        with self._lock:
            self.requests += 1

    def record_error(self, count: int = 1) -> None:
        with self._lock:
            self.errors += count

    def record_reject(self, count: int = 1) -> None:
        with self._lock:
            self.rejected += count

    def record_shed(self, count: int = 1) -> None:
        with self._lock:
            self.shed += count

    def record_expired(self, count: int = 1) -> None:
        with self._lock:
            self.expired += count

    def record_retry(self, count: int = 1) -> None:
        with self._lock:
            self.retries += count

    @property
    def batch_size_histogram(self) -> Dict[int, int]:
        with self._lock:
            return dict(sorted(self._batch_hist.items()))

    def record_swap(self) -> None:
        with self._lock:
            self.weight_swaps += 1

    def record_swap_failure(self) -> None:
        with self._lock:
            self.weight_swap_failures += 1

    @property
    def mean_batch_size(self) -> float:
        with self._lock:
            return (self._batched_requests / self.batches
                    if self.batches else 0.0)

    def latency(self, percentile: float) -> Optional[float]:
        """Latency percentile in seconds (None before any request)."""
        with self._lock:
            if not self._latencies:
                return None
            return float(np.percentile(self._latencies, percentile))

    def as_dict(self) -> Dict[str, Any]:
        p50, p99 = self.latency(50), self.latency(99)
        with self._lock:
            return {
                "requests": self.requests,
                "batches": self.batches,
                "errors": self.errors,
                "rejected": self.rejected,
                "shed": self.shed,
                "expired": self.expired,
                "retries": self.retries,
                "weight_swaps": self.weight_swaps,
                "weight_swap_failures": self.weight_swap_failures,
                "mean_batch_size": round(
                    self._batched_requests / self.batches, 2)
                    if self.batches else 0.0,
                "max_batch_size": self.max_batch,
                "batch_size_histogram": dict(sorted(self._batch_hist.items())),
                "p50_latency_ms": round(p50 * 1e3, 3) if p50 else None,
                "p99_latency_ms": round(p99 * 1e3, 3) if p99 else None,
            }


class _Request:
    __slots__ = ("obs", "ref", "t_submit", "attempts", "deadline")

    def __init__(self, obs, ref: ObjectRef, t_submit: float,
                 deadline: Optional[float] = None):
        self.obs = obs
        self.ref = ref
        self.t_submit = t_submit
        # Absolute (perf_counter) expiry, or None: the batch loop skips
        # expired requests instead of wasting a batch slot on them.
        self.deadline = deadline
        # Dispatch attempts so far: a supervised worker pool re-queues
        # the requests of a batch lost to a replica crash (bounded — see
        # InferenceWorkerPool._on_batch_done) instead of failing them.
        self.attempts = 0


class _Control:
    """A mailbox item that is not a request (weight swap)."""

    __slots__ = ("kind", "value", "ref")

    def __init__(self, kind: str, value, ref: ObjectRef):
        self.kind = kind
        self.value = value
        self.ref = ref


_STOP = object()


def bucket_size(n: int, max_batch_size: int) -> int:
    """The power-of-two batch bucket for ``n`` (capped at the max)."""
    if n >= max_batch_size:
        return max_batch_size
    b = 1
    while b < n:
        b <<= 1
    return min(b, max_batch_size)


def bucket_sizes(max_batch_size: int):
    """All batch buckets a server can see (what warm-up must prime)."""
    sizes = {max_batch_size}
    b = 1
    while b < max_batch_size:
        sizes.add(b)
        b <<= 1
    return sorted(sizes)


class _BatchingFrontEnd:
    """Shared micro-batching front end (mailbox + collector loop).

    Subclasses implement :meth:`_dispatch` (execute one collected batch)
    and :meth:`_apply_weights` (the between-batches hot swap).
    """

    def __init__(self, state_space, max_batch_size: int = 32,
                 batch_window: float = 0.002, name: str = "policy-server",
                 auto_start: bool = True, admission_spec=None,
                 default_deadline: Optional[float] = None,
                 tick: Optional[float] = None):
        if max_batch_size < 1:
            raise RLGraphError("max_batch_size must be >= 1")
        if batch_window < 0:
            raise RLGraphError("batch_window must be >= 0")
        if default_deadline is not None and default_deadline <= 0:
            raise RLGraphError("default_deadline must be > 0 (or None)")
        self.state_space = state_space
        self.max_batch_size = int(max_batch_size)
        self.batch_window = float(batch_window)
        self.name = name
        self.admission = resolve_admission_spec(admission_spec)
        self.default_deadline = default_deadline
        self.stats = ServerStats()
        self._shedder = self.admission.make_shedder()
        self._mailbox: "queue.Queue" = queue.Queue()
        # Queued *request* count (controls excluded): the admission /
        # shedding / autoscaling signal.  Tracked explicitly because
        # Queue.qsize() would count control items too.
        self._depth = 0
        self._depth_lock = threading.Lock()
        # Collector wake-up period with an empty mailbox: None blocks
        # forever (the plain-server default); the pool sets it so the
        # autoscaler can act on *silence* (shrink-when-idle).
        self._tick = tick
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        if auto_start:
            self.start()

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "_BatchingFrontEnd":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stopped.clear()
        self._warm_up()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name=self.name)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Drain-and-stop: requests already queued are still served (the
        sentinel sits behind them in the mailbox), new submits fail with
        a typed :class:`ServerClosedError` *synchronously*.  A request
        that raced past the submit-time check while stop ran is failed
        here with the same typed error immediately — its caller's
        ``ref.result()`` raises right away rather than hanging until
        the client timeout."""
        if self._thread is None:
            return
        self._stopped.set()
        self._mailbox.put(_STOP)
        self._thread.join(timeout=30.0)
        self._thread = None
        while True:
            try:
                item = self._mailbox.get_nowait()
            except queue.Empty:
                break
            if isinstance(item, _Request):
                self._depth_dec()
            if isinstance(item, (_Request, _Control)):
                item.ref._fail(ServerClosedError(
                    f"{self.name}: server is not running"))

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()

    def _warm_up(self) -> None:  # pragma: no cover - overridden
        pass

    # -- queue-depth accounting ----------------------------------------------
    def _depth_inc(self) -> None:
        with self._depth_lock:
            self._depth += 1

    def _depth_dec(self) -> None:
        with self._depth_lock:
            self._depth -= 1

    def queue_depth(self) -> int:
        """Requests currently waiting in the mailbox (the overload
        signal: admission, CoDel and the autoscaler all read it)."""
        with self._depth_lock:
            return self._depth

    def _admit(self) -> None:
        """Bounded-queue admission: runs synchronously in ``submit``.

        ``reject`` raises the typed :class:`OverloadError` to the caller
        (queue depth + retry-after attached); ``drop-oldest`` fails the
        oldest *queued* request instead and admits the new one.
        """
        max_queue = self.admission.max_queue
        if max_queue is None:
            return
        depth = self.queue_depth()
        if depth < max_queue:
            return
        if self.admission.policy == "reject":
            self.stats.record_reject()
            raise OverloadError(
                f"{self.name}: request queue is full "
                f"({depth}/{max_queue}); retry after "
                f"{self.admission.retry_after:.3f}s",
                queue_depth=depth, retry_after=self.admission.retry_after,
                reason="queue_full")
        # drop-oldest: pop queued items until a request surfaces;
        # controls (weight swaps) are order-insensitive between batches
        # and are simply re-enqueued.
        requeue = []
        victim = None
        while True:
            try:
                item = self._mailbox.get_nowait()
            except queue.Empty:
                break
            if isinstance(item, _Request):
                victim = item
                break
            requeue.append(item)
        for item in requeue:
            self._mailbox.put(item)
        if victim is not None:
            self._depth_dec()
            self.stats.record_shed()
            victim.ref._fail(OverloadError(
                f"{self.name}: dropped as oldest queued request under "
                f"overload (queue {depth}/{max_queue})",
                queue_depth=depth, retry_after=self.admission.retry_after,
                reason="dropped_oldest"))

    # -- client surface ------------------------------------------------------
    def submit(self, obs, deadline: Optional[float] = None) -> ObjectRef:
        """Enqueue one observation; returns a raylite-style future for
        its action.  Shape problems fail *here*, synchronously, with the
        expected shapes spelled out — they never poison a batch.

        ``deadline`` is a seconds budget for this request; once it
        expires while queued the batch loop fails the future with
        :class:`DeadlineExceededError` instead of executing it.  A full
        bounded queue raises :class:`OverloadError` here (``reject``
        policy) or sheds the oldest queued request (``drop-oldest``).
        """
        if self._stopped.is_set() or self._thread is None:
            raise ServerClosedError(f"{self.name}: server is not running")
        obs = np.asarray(obs)
        expected = self.state_space.shape
        if obs.shape != expected:
            raise RLGraphError(
                f"{self.name}: observation of shape {obs.shape} does not "
                f"match the state space shape {expected} — submit exactly "
                f"one unbatched observation per request")
        self._admit()
        now = time.perf_counter()
        if deadline is None:
            deadline = self.default_deadline
        ref = ObjectRef()
        self.stats.record_submit()
        self._depth_inc()
        self._mailbox.put(_Request(
            obs, ref, now, deadline_from_budget(deadline, now)))
        # Re-check after the put: a stop() racing this submit may have
        # already drained the mailbox, leaving the request unread.
        # Settle-once semantics make this safe — if the loop (or the
        # stop-drain) did handle it, this _fail is a no-op.
        thread = self._thread
        if self._stopped.is_set() and (thread is None
                                       or not thread.is_alive()):
            ref._fail(ServerClosedError(
                f"{self.name}: server is not running"))
        return ref

    def act(self, obs, timeout: Optional[float] = None,
            deadline: Optional[float] = None):
        """Synchronous single-observation act."""
        return self.submit(obs, deadline=deadline).result(timeout)

    def set_weights(self, weights, wait: bool = False) -> ObjectRef:
        """Hot-swap policy weights mid-traffic.

        ``weights`` is a flat float32 vector (``get_weights(flat=True)``)
        or a per-variable dict; the swap applies between micro-batches,
        so no in-flight request ever sees a half-written policy.  Returns
        a future resolving once the swap is applied (``wait=True`` blocks
        on it).
        """
        if self._thread is None or not self._thread.is_alive():
            raise RLGraphError(f"{self.name}: server is not running")
        ref = ObjectRef()
        self._mailbox.put(_Control("weights", weights, ref))
        if wait:
            ref.result(timeout=30.0)
        return ref

    # -- the batching loop ---------------------------------------------------
    def _loop(self) -> None:
        while True:
            try:
                if self._tick is None:
                    item = self._mailbox.get()
                else:
                    item = self._mailbox.get(timeout=self._tick)
            except queue.Empty:
                # Idle tick: no traffic — let subclasses evaluate
                # time-driven policy (autoscaler shrink-when-idle).
                self._on_idle_tick()
                continue
            if item is _STOP:
                return
            requests: List[_Request] = []
            controls: List[_Control] = []
            if isinstance(item, _Control):
                controls.append(item)
            else:
                self._depth_dec()
                requests.append(item)
                deadline = time.perf_counter() + self.batch_window
                while len(requests) < self.max_batch_size:
                    remaining = deadline - time.perf_counter()
                    try:
                        if remaining > 0:
                            nxt = self._mailbox.get(timeout=remaining)
                        else:
                            # Window closed: opportunistically drain what
                            # is already queued, never wait further.
                            nxt = self._mailbox.get_nowait()
                    except queue.Empty:
                        break
                    if nxt is _STOP:
                        # Serve this batch, then re-see the sentinel.
                        self._mailbox.put(_STOP)
                        break
                    if isinstance(nxt, _Control):
                        controls.append(nxt)
                    else:
                        self._depth_dec()
                        requests.append(nxt)
            requests = self._filter_admitted(requests)
            if requests:
                try:
                    self._dispatch(requests)
                except BaseException as exc:
                    self.stats.record_error(len(requests))
                    for req in requests:
                        req.ref._fail(exc)
            # Controls apply BETWEEN batches: the swap never tears a
            # batch that was already being assembled.
            for control in controls:
                try:
                    self._apply_weights(control.value)
                    self.stats.record_swap()
                    control.ref._resolve(True)
                except BaseException as exc:
                    # Most swap callers are fire-and-forget (executor
                    # weight_listeners): failing only the ref would be
                    # silent, leaving the server on stale weights with
                    # no trace — count it and warn loudly as well.
                    self.stats.record_swap_failure()
                    import sys
                    print(f"{self.name}: weight hot-swap FAILED, still "
                          f"serving previous weights: {exc}",
                          file=sys.stderr)
                    control.ref._fail(exc)

    def _filter_admitted(self, requests: List[_Request]) -> List[_Request]:
        """Drop expired and CoDel-shed requests from a collected batch.

        Runs on the collector thread just before dispatch.  An expired
        request is *never executed* — its slot is simply not wasted —
        and its future fails with the typed deadline error.  When CoDel
        detects a standing queue (sojourn above target for a full
        interval), requests shed here fail with :class:`OverloadError`
        so clients back off instead of piling on.
        """
        now = time.perf_counter()
        depth = self.queue_depth()
        admitted: List[_Request] = []
        for req in requests:
            if req.deadline is not None and now >= req.deadline:
                self.stats.record_expired()
                req.ref._fail(DeadlineExceededError(
                    f"{self.name}: deadline expired after "
                    f"{now - req.t_submit:.4f}s in queue (budget "
                    f"{req.deadline - req.t_submit:.4f}s) — request was "
                    f"never executed",
                    waited=now - req.t_submit,
                    budget=req.deadline - req.t_submit))
                continue
            if self._shedder is not None and self._shedder.on_dequeue(
                    now - req.t_submit, now=now,
                    queue_depth=depth + len(requests)):
                self.stats.record_shed()
                req.ref._fail(OverloadError(
                    f"{self.name}: shed after {now - req.t_submit:.4f}s "
                    f"queueing delay (CoDel target "
                    f"{self._shedder.target:.4f}s)",
                    queue_depth=depth,
                    retry_after=self.admission.retry_after, reason="shed"))
                continue
            admitted.append(req)
        return admitted

    def metrics_snapshot(self) -> Dict[str, Any]:
        """One scrapeable snapshot: counters, percentiles, queue depth,
        batch-size histogram, admission configuration.  The HTTP
        gateway serves this (plus its per-route layer) at /metrics."""
        snap = self.stats.as_dict()
        snap["queue_depth"] = self.queue_depth()
        snap["max_queue"] = self.admission.max_queue
        snap["admission_policy"] = (self.admission.policy
                                    if self.admission.enabled else None)
        snap["codel_target"] = self.admission.codel_target
        snap["running"] = (self._thread is not None
                           and self._thread.is_alive())
        return snap

    # -- to be implemented ---------------------------------------------------
    def _dispatch(self, requests: List[_Request]) -> None:
        raise NotImplementedError

    def _apply_weights(self, weights) -> None:
        raise NotImplementedError

    def _on_idle_tick(self) -> None:
        """Called when a tick elapses with no mailbox traffic (only when
        ``tick`` is set).  Subclasses hook time-driven policy here."""

    # -- shared batch helpers ------------------------------------------------
    def _stack(self, requests: List[_Request]):
        """Stack request observations, padded up to the batch bucket."""
        obs = np.stack([r.obs for r in requests])
        n = len(requests)
        if self.pad_batches:
            target = bucket_size(n, self.max_batch_size)
            if target > n:
                pad = np.broadcast_to(obs[-1], (target - n,) + obs.shape[1:])
                obs = np.concatenate([obs, pad], axis=0)
        return obs

    def _scatter(self, requests: List[_Request], actions) -> None:
        """Resolve each request's future with its row of the batch."""
        actions = np.asarray(actions)
        now = time.perf_counter()
        for i, req in enumerate(requests):
            req.ref._resolve(actions[i])
        self.stats.record_batch(
            len(requests), [now - r.t_submit for r in requests])


class PolicyServer(_BatchingFrontEnd):
    """In-process micro-batching policy server over one built agent.

    Args:
        agent: a built :class:`~repro.agents.agent.Agent`; requests run
            through its greedy act endpoint (``explore=False``, the
            serving default) via the cached compiled call path.
        max_batch_size: micro-batch cap (one compiled call serves up to
            this many concurrent requests).
        batch_window: how long (seconds) an open batch waits for
            stragglers.  ``0`` still drains already-queued requests —
            the knob trades tail latency for batching opportunity.
        explore: serve exploratory actions instead of greedy ones
            (eval traffic wants False; self-play style traffic may not).
        pad_batches: quantize batch shapes to power-of-two buckets so
            the backend sees few distinct shapes (warmed at start).
        auto_start: start the batching thread on construction.
    """

    def __init__(self, agent, max_batch_size: int = 32,
                 batch_window: float = 0.002, explore: bool = False,
                 pad_batches: bool = True, name: str = "policy-server",
                 auto_start: bool = True, admission_spec=None,
                 default_deadline: Optional[float] = None):
        if agent.graph is None:
            raise RLGraphError("PolicyServer needs a built agent")
        self.agent = agent
        self.explore = explore
        # Padding feeds phantom duplicate rows through the act call; on
        # the greedy path that is free, but with explore=True each
        # phantom row would advance the exploration schedule and burn
        # RNG draws — so exploratory serving never pads.
        self.pad_batches = pad_batches and not explore
        self._act = agent.serving_act_fn(explore=explore)
        super().__init__(agent.state_space, max_batch_size=max_batch_size,
                         batch_window=batch_window, name=name,
                         auto_start=auto_start, admission_spec=admission_spec,
                         default_deadline=default_deadline)

    def _warm_up(self) -> None:
        """Prime the compiled act plan and its allocations for every
        batch bucket, so no live request pays first-call latency.
        Warm-up traffic is synthetic: the agent's timestep counter (and
        with it any exploration schedule) is restored afterwards."""
        before = self.agent.timesteps
        zeros = self.state_space.zeros
        for size in bucket_sizes(self.max_batch_size):
            self._act(zeros(size=size))
        self.agent.timesteps = before

    def _dispatch(self, requests: List[_Request]) -> None:
        obs = self._stack(requests)
        actions = self._act(obs)
        self._scatter(requests, actions[:len(requests)])

    def _apply_weights(self, weights) -> None:
        self.agent.set_weights(weights)

    def __repr__(self):
        return (f"PolicyServer(agent={type(self.agent).__name__}, "
                f"max_batch={self.max_batch_size}, "
                f"window={self.batch_window * 1e3:.1f}ms)")
