"""Repo-wide pytest fixtures.

The multiprocess suites (raylite process backend, SubprocVectorEnv, the
E11 process-parallel bench) talk to worker processes over pipes; a
deadlocked or wedged worker would hang ``conn.recv`` and wedge the
whole CI run.  Tests marked ``@pytest.mark.mp_timeout(seconds)`` get a
SIGALRM-based guard that fails them fast with a clear error instead (no
third-party pytest-timeout dependency; platforms without SIGALRM skip
the guard).
"""

import signal

import pytest

_DEFAULT_TIMEOUT = 60


@pytest.fixture(autouse=True)
def _deterministic_eager_seeds():
    """Eager-mode random ops draw their seeds from a process-global
    counter (`repro.backend.functional._eager_seed_counter`).  Reset it
    per test so every test sees the exact RNG stream of an isolated run
    — without this, timed benchmark windows advance the counter by a
    nondeterministic amount and seed-sensitive learning tests
    (e.g. test_multi_device_learns[xtape]) flake depending on suite
    order and machine speed."""
    from repro.backend import functional
    functional._eager_seed_counter[0] = 0
    yield


@pytest.fixture(autouse=True)
def _mp_deadlock_guard(request):
    marker = request.node.get_closest_marker("mp_timeout")
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    seconds = int(marker.args[0]) if marker.args else \
        int(marker.kwargs.get("seconds", _DEFAULT_TIMEOUT))

    def _abort(signum, frame):
        raise RuntimeError(
            f"mp_timeout: {request.node.nodeid} exceeded {seconds}s — "
            f"a worker process or actor is likely deadlocked")

    previous = signal.signal(signal.SIGALRM, _abort)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
